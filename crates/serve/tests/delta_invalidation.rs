//! Cross-layer delta-invalidation property suite.
//!
//! The delta-update contract says that after [`DtcSpmm::apply_delta`]
//! mutates a matrix in place, **no caching layer may serve a pre-edit
//! artifact**: the process-wide conversion cache (both its lossy front
//! tier and the exact tier), the engine's trace cache (and the duration
//! classes interned inside its traces), and the serving layer's
//! [`EnginePool`] slots keyed by the mutated matrix's [`KeyMaterial`].
//! These properties drive arbitrary edit scripts through the full stack
//! and check every layer either misses or serves post-edit state — plus a
//! crafted front-tier collision where the purged key shares its
//! direct-mapped slot with an innocent neighbor, the case where purging
//! by slot index instead of by key would evict the neighbor or, worse,
//! leave the stale entry resident.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dtc_core::cache::metcf_for;
use dtc_core::{
    invalidate_conversion, DeltaPolicy, DtcSpmm, EngineConfig, EngineKind, KeyMaterial, MatrixDelta,
};
use dtc_formats::{gen::uniform, CsrMatrix, DenseMatrix, MeTcfMatrix};
use dtc_serve::{Request, ServeConfig, SpmmServer};
use dtc_sim::Device;
use proptest::prelude::*;

/// Every case works on a matrix nothing else in the process has touched,
/// so cache-state assertions (entry counts, purge returns) are exact even
/// with tests running in parallel threads.
static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn fresh_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let uniq = UNIQUE.fetch_add(1, Ordering::SeqCst);
    uniform(rows, cols, nnz, seed ^ uniq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Folds a generated op list into an in-bounds edit batch: upserts,
/// updates of possibly-absent coordinates and deletes (possibly of absent
/// coordinates) all mixed, exactly the tolerant surface `MatrixDelta`
/// exposes.
fn delta_from_ops(a: &CsrMatrix, ops: &[(u64, u64, u8, i32)]) -> MatrixDelta {
    let mut delta = MatrixDelta::new();
    for &(row_sel, col_sel, kind, raw) in ops {
        let row = row_sel as usize % a.rows();
        let col = col_sel as usize % a.cols();
        let value = if raw == 0 { 1.5 } else { raw as f32 * 0.25 };
        match kind % 3 {
            0 => delta.insert(row, col, value),
            1 => delta.update(row, col, -value),
            _ => delta.delete(row, col),
        }
    }
    if delta.is_empty() {
        delta.insert(0, 0, 2.0);
    }
    delta
}

fn value_bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary edit script, full stack: conversion cache, engine pool,
    /// trace cache. After the edit every layer misses under the pre-edit
    /// identity and everything served afterwards is post-edit state.
    #[test]
    fn every_layer_misses_or_serves_post_edit_artifacts(
        dims in (48usize..112, 32usize..80, 0u64..1 << 32),
        ops in proptest::collection::vec((0u64..1 << 32, 0u64..1 << 32, 0u8..6, -8i32..8), 1..12),
    ) {
        let (rows, cols, seed) = dims;
        let a = fresh_matrix(rows, cols, rows * 4, seed);
        let delta = delta_from_ops(&a, &ops);
        let edited = delta.apply_to_csr(&a).expect("in-bounds by construction");
        let pre_material = KeyMaterial::of(&a);
        let device = Device::rtx4090();
        let config = EngineConfig::default();

        // Warm every layer under the pre-edit identity.
        let server = SpmmServer::new(ServeConfig { admission_verify: false, ..Default::default() });
        let b = DenseMatrix::from_fn(a.cols(), 8, |r, c| ((r * 5 + c) % 13) as f32 * 0.5 - 3.0);
        let request = |m: &CsrMatrix| Request {
            tenant: 0,
            kind: EngineKind::Dtc,
            config: config.clone(),
            matrix: Arc::new(m.clone()),
            b: b.clone(),
        };
        server.serve_one(request(&a)).expect("pre-edit serve");
        prop_assert_eq!(server.pool().len(), 1);
        let mut engine = DtcSpmm::new(&a);
        let _warm_trace = engine.trace(8, &device, false);

        // The edit, then the serving layer's invalidation hook.
        engine.apply_delta(&delta, &DeltaPolicy::default()).expect("in-bounds delta");
        let dropped = server.invalidate_matrix(&pre_material);
        prop_assert_eq!(dropped, 1, "exactly the pooled pre-edit engine must drop");
        prop_assert!(server.pool().is_empty());

        // Conversion cache: the pre-edit conversion is gone from both
        // tiers — purging the pre-edit identity again finds nothing.
        // (Checked before any rebuild, which would legitimately re-admit
        // when the script happens to be a no-op and `edited == a`.)
        prop_assert_eq!(invalidate_conversion(&pre_material), 0);

        // The patched engine IS post-edit state: identity, format, trace
        // and output all match a fresh build over the edited matrix.
        let fresh = DtcSpmm::new(&edited);
        prop_assert_eq!(engine.key(), &KeyMaterial::of(&edited));
        prop_assert!(engine.metcf() == fresh.metcf(), "patched ME-TCF diverged from rebuild");
        prop_assert_eq!(
            engine.trace(8, &device, false).iter_tbs().count(),
            fresh.trace(8, &device, false).iter_tbs().count(),
        );

        // Pool rebuild under the post-edit identity serves post-edit
        // output, bitwise equal to the patched engine's.
        let served = server.serve_one(request(&edited)).expect("post-edit serve");
        let patched_out = engine.execute(&b).expect("patched execute");
        prop_assert_eq!(value_bits(&served), value_bits(&patched_out));

        // And the conversion cache now serves only the post-edit format.
        let conv = metcf_for(&edited).expect("within u32 bounds");
        prop_assert!(conv.metcf == *engine.metcf());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crafted front-tier collision: a neighbor matrix occupying the SAME
    /// direct-mapped conversion front slot as the edited one. Purging the
    /// pre-edit key must leave the neighbor served and the edited identity
    /// missing, in both residency orders.
    #[test]
    fn same_slot_front_tier_neighbor_survives_the_purge(
        seed in 0u64..1 << 32,
        a_last in any::<bool>(),
    ) {
        // Mirrors the conversion front's slot math: 256 direct-mapped
        // slots, high half folded down (`FRONT_SLOTS` in dtc-core and
        // `FrontTier::slot_of` in dtc-par).
        let slot_of = |m: &KeyMaterial| {
            let h = m.fingerprint();
            (h ^ (h >> 32)) & 255
        };
        let a = fresh_matrix(64, 64, 400, seed);
        let material_a = KeyMaterial::of(&a);
        let mut neighbor = None;
        for probe in 0..16_384u64 {
            let b = fresh_matrix(64, 64, 400, seed ^ 0xB000 ^ probe);
            let material_b = KeyMaterial::of(&b);
            if slot_of(&material_b) == slot_of(&material_a) && material_b != material_a {
                neighbor = Some((b, material_b));
                break;
            }
        }
        let (b, material_b) = neighbor.expect("a same-slot neighbor exists within 16Ki draws");

        // Warm both; generation order decides which one owns the shared
        // front slot when the purge lands.
        let (arc_a, arc_b);
        if a_last {
            arc_b = metcf_for(&b).expect("within u32 bounds");
            arc_a = metcf_for(&a).expect("within u32 bounds");
        } else {
            arc_a = metcf_for(&a).expect("within u32 bounds");
            arc_b = metcf_for(&b).expect("within u32 bounds");
        }
        let _ = &arc_a;

        let mut engine = DtcSpmm::new(&a);
        let mut delta = MatrixDelta::new();
        delta.insert(3, 7, 4.25);
        delta.delete(1, 1);
        engine.apply_delta(&delta, &DeltaPolicy::default()).expect("in-bounds delta");

        // The purge was by key, not by slot: the same-slot neighbor is
        // still resident (same Arc back), the pre-edit identity is gone,
        // and the edited identity resolves to post-edit state only.
        let b_again = metcf_for(&b).expect("within u32 bounds");
        prop_assert!(Arc::ptr_eq(&arc_b, &b_again), "neighbor evicted by a foreign purge");
        prop_assert_eq!(invalidate_conversion(&material_a), 0);
        let _ = material_b;
        let edited = delta.apply_to_csr(&a).expect("in-bounds delta");
        let conv = metcf_for(&edited).expect("within u32 bounds");
        prop_assert!(conv.metcf == MeTcfMatrix::from_csr(&edited));
        prop_assert!(conv.metcf == *engine.metcf());
    }
}
