//! A sectored, set-associative LRU model of the GPU L2 cache.
//!
//! Used for the Fig 13(c) experiment: Hierarchy II of TCU-Cache-Aware
//! reordering groups row clusters with similar column sets so that
//! *concurrently resident* thread blocks touch overlapping rows of B and
//! hit in the (SM-shared) L2. To capture that, the trace's per-TB B-access
//! streams are replayed in scheduled-wave order with round-robin
//! interleaving between the blocks of a wave.
//!
//! # Set sharding
//!
//! A set-associative cache decomposes *exactly* by set index: an access to
//! sector `a` touches only set `a mod S`, and each set's LRU state depends
//! only on the subsequence of accesses mapped to it, in order. Partitioning
//! the sets across `T` workers (worker `t` owns sets `s ≡ t (mod T)`) and
//! having every worker walk the full interleaved stream — keeping only its
//! own sets — therefore reproduces the serial model's per-set histories
//! verbatim. Hit and access counts are integers, so their sum over shards
//! is bit-identical to the serial count at any thread count; the serial
//! path is the 1-shard case of the same code.
//!
//! Sharding would be useless if every worker paid the full decode cost, so
//! workers never materialize foreign addresses: inside one encoded run
//! (consecutive addresses), the members of shard `t` are an arithmetic
//! progression of stride `T` (between multiples of `S`, where `a mod S`
//! advances with `a`), and [`advance_chunk`] steps directly between them.
//! Per-shard work is `O(members + runs)`, not `O(sectors)`.

use crate::{Device, KernelTrace};

/// Round-robin chunk size for interleaving the streams of one wave.
const CHUNK: usize = 16;

/// A set-associative, 32-byte-sector LRU cache.
#[derive(Debug)]
pub struct L2Cache {
    sets: Vec<Vec<u64>>, // each set: most-recent-last list of sector tags
    ways: usize,
    num_sets: usize,
    hits: u64,
    accesses: u64,
}

impl L2Cache {
    /// Builds a cache model for the given device's L2 parameters.
    pub fn for_device(device: &Device) -> Self {
        let (num_sets, ways) = l2_geometry(device);
        Self::with_geometry(num_sets, ways)
    }

    /// Builds a cache with explicit geometry (for tests).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        L2Cache {
            sets: vec![Vec::new(); num_sets.max(1)],
            ways: ways.max(1),
            num_sets: num_sets.max(1),
            hits: 0,
            accesses: 0,
        }
    }

    /// Accesses a sector address; returns `true` on hit.
    pub fn access(&mut self, sector_addr: u64) -> bool {
        self.accesses += 1;
        let set = (sector_addr as usize) % self.num_sets;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|&t| t == sector_addr) {
            // Move to MRU position.
            let tag = lines.remove(pos);
            lines.push(tag);
            self.hits += 1;
            true
        } else {
            if lines.len() >= self.ways {
                lines.remove(0); // evict LRU
            }
            lines.push(sector_addr);
            false
        }
    }

    /// Number of accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate so far (0 when no accesses were made).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// The device's L2 geometry as `(num_sets, ways)`.
fn l2_geometry(device: &Device) -> (usize, usize) {
    let lines = (device.l2_bytes / device.sector_bytes as u64).max(1) as usize;
    let ways = device.l2_ways.max(1);
    ((lines / ways).max(1), ways)
}

/// Replays a trace's recorded B-sector streams through the device's L2.
///
/// Thread blocks are grouped into waves of `num_sms × occupancy` (the set
/// of concurrently resident blocks); within a wave, accesses interleave
/// round-robin in chunks, approximating concurrent execution. The replay
/// is sharded by set index over [`dtc_par::num_threads`] workers (see the
/// module docs) — hit counts are bit-identical to the serial model at any
/// thread count. Returns the overall hit rate; 0.0 when the trace recorded
/// no addresses.
pub fn simulate_l2_over_trace(device: &Device, trace: &KernelTrace) -> f64 {
    let (hits, accesses) = l2_counts_over_trace(device, trace, dtc_par::num_threads());
    if accesses == 0 {
        0.0
    } else {
        hits as f64 / accesses as f64
    }
}

/// [`simulate_l2_over_trace`] with an explicit shard count, returning the
/// exact `(hits, accesses)` counters. `threads == 1` is the serial model.
pub fn l2_counts_over_trace(device: &Device, trace: &KernelTrace, threads: usize) -> (u64, u64) {
    if !trace.has_streams() || trace.num_tbs() == 0 {
        return (0, 0);
    }
    let (num_sets, ways) = l2_geometry(device);
    debug_assert!(
        trace.occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let wave = (device.num_sms * trace.occupancy).max(1);
    let shards = threads.max(1).min(num_sets);
    // Shards own interleaved set residues, so their work is near-uniform; an
    // even plan suffices. The replay's set tables and wave cursors lease
    // worker-arena scratch — steady-state replay performs no heap
    // allocation.
    let plan = dtc_par::ShardPlan::even(shards, shards);
    let per_shard: Vec<(u64, u64)> = dtc_par::par_map_collect_plan(&plan, |shard, scratch| {
        replay_shard(trace, wave, num_sets, ways, shard, shards, scratch)
    });
    let mut hits = 0u64;
    let mut accesses = 0u64;
    for (h, a) in per_shard {
        hits += h;
        accesses += a;
    }
    (hits, accesses)
}

/// Counts `(hits, accesses)` of one shard — the unit of parallel work
/// inside [`l2_counts_over_trace`]. Summing over `shard in 0..num_shards`
/// reproduces the serial counts exactly. Public so benchmarks can measure
/// per-shard critical paths independently of the host's core count.
pub fn l2_shard_counts(
    device: &Device,
    trace: &KernelTrace,
    shard: usize,
    num_shards: usize,
) -> (u64, u64) {
    if !trace.has_streams() || trace.num_tbs() == 0 || shard >= num_shards {
        return (0, 0);
    }
    let (num_sets, ways) = l2_geometry(device);
    debug_assert!(
        trace.occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let wave = (device.num_sms * trace.occupancy).max(1);
    dtc_par::with_arena(|scratch| {
        replay_shard(trace, wave, num_sets, ways, shard, num_shards, scratch)
    })
}

/// A thread block's replay position inside its encoded stream:
/// `(run index, offset within run)`.
type TbPos = (usize, u64);

/// Consumes up to `budget` decoded positions from `runs` starting at `pos`,
/// visiting — in stream order — only the addresses whose set index belongs
/// to shard `shard` of `num_shards`.
///
/// Within a run, `a mod num_sets` increases with `a` between multiples of
/// `num_sets`, so the shard's members satisfy a fixed residue `a ≡ r (mod
/// num_shards)` per segment and are enumerated by stepping `num_shards` —
/// foreign addresses are skipped arithmetically, never decoded.
fn advance_chunk(
    runs: &[crate::SectorRun],
    pos: &mut TbPos,
    mut budget: u64,
    num_sets: u64,
    shard: u64,
    num_shards: u64,
    mut visit: impl FnMut(u64),
) {
    while budget > 0 {
        let Some(run) = runs.get(pos.0) else { return };
        let len = run.len as u64;
        let take = (len - pos.1).min(budget);
        let a0 = run.start + pos.1;
        let a1 = a0 + take;
        // Split at multiples of num_sets: the wrap changes the residue.
        let mut a = a0;
        while a < a1 {
            let k = a / num_sets;
            let seg_end = a1.min((k + 1).saturating_mul(num_sets));
            // a belongs to the shard iff (a - k·S) ≡ shard (mod T), i.e.
            // a ≡ shard + k·S (mod T).
            let residue = (shard + (k % num_shards) * (num_sets % num_shards)) % num_shards;
            let mut x = a + (residue + num_shards - a % num_shards) % num_shards;
            while x < seg_end {
                visit(x);
                x += num_shards;
            }
            a = seg_end;
        }
        pos.1 += take;
        budget -= take;
        if pos.1 == len {
            pos.0 += 1;
            pos.1 = 0;
        }
    }
}

/// Replays the interleaved access stream, modeling only the sets
/// `s ≡ shard (mod num_shards)` and counting their hits and accesses.
fn replay_shard(
    trace: &KernelTrace,
    wave: usize,
    num_sets: usize,
    ways: usize,
    shard: usize,
    num_shards: usize,
    scratch: &mut dtc_par::ScratchArena,
) -> (u64, u64) {
    // Local storage for the shard's sets: global set `s` (with
    // `s % num_shards == shard`) lives at local index `s / num_shards`.
    // Both the set table and the per-wave cursor list are leased from the
    // worker's arena: repeated replays (tracelint sweeps, the Fig 13c
    // ablation grid) reuse the same capacity instead of reallocating.
    let local_sets = (num_sets - shard).div_ceil(num_shards);
    let mut sets: Vec<Vec<u64>> = scratch.u64_table(local_sets);
    let mut pos: Vec<TbPos> = scratch.pair_buf();
    let mut hits = 0u64;
    let mut accesses = 0u64;

    let n = trace.num_tbs();
    let mut wave_start = 0usize;
    while wave_start < n {
        let wave_end = (wave_start + wave).min(n);
        pos.clear();
        pos.resize(wave_end - wave_start, (0, 0));
        loop {
            let mut progressed = false;
            for (j, p) in pos.iter_mut().enumerate() {
                let runs = trace.stream(wave_start + j).runs();
                if p.0 >= runs.len() {
                    continue;
                }
                progressed = true;
                advance_chunk(
                    runs,
                    p,
                    CHUNK as u64,
                    num_sets as u64,
                    shard as u64,
                    num_shards as u64,
                    |addr| {
                        accesses += 1;
                        let set = (addr as usize) % num_sets;
                        let lines = &mut sets[set / num_shards];
                        if let Some(i) = lines.iter().position(|&t| t == addr) {
                            let tag = lines.remove(i);
                            lines.push(tag);
                            hits += 1;
                        } else {
                            if lines.len() >= ways {
                                lines.remove(0); // evict LRU
                            }
                            lines.push(addr);
                        }
                    },
                );
            }
            if !progressed {
                break;
            }
        }
        wave_start = wave_end;
    }
    scratch.recycle_pair(pos);
    scratch.recycle_u64_table(sets);
    (hits, accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TbWork;

    #[test]
    fn repeat_access_hits() {
        let mut c = L2Cache::with_geometry(16, 4);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = L2Cache::with_geometry(1, 2);
        c.access(0);
        c.access(1);
        c.access(2); // evicts 0
        assert!(!c.access(0)); // miss: 0 was evicted (and now evicts 1)
        assert!(c.access(2)); // 2 still resident
    }

    #[test]
    fn mru_update_prevents_eviction() {
        let mut c = L2Cache::with_geometry(1, 2);
        c.access(0);
        c.access(1);
        c.access(0); // 0 becomes MRU
        c.access(2); // evicts 1, not 0
        assert!(c.access(0));
    }

    #[test]
    fn hit_rate_zero_without_accesses() {
        assert_eq!(L2Cache::with_geometry(4, 4).hit_rate(), 0.0);
    }

    #[test]
    fn shared_streams_hit_in_same_wave() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        // Two TBs in the same wave touching identical sectors: second
        // pass over the stream hits.
        for _ in 0..2 {
            trace.push(TbWork { b_stream: (0..1000).collect(), ..TbWork::default() });
        }
        let hit = simulate_l2_over_trace(&device, &trace);
        assert!(hit > 0.4, "hit={hit}");
    }

    #[test]
    fn disjoint_streams_do_not_hit() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        trace.push(TbWork { b_stream: (0..1000).collect(), ..TbWork::default() });
        trace.push(TbWork { b_stream: (1_000_000..1_001_000).collect(), ..TbWork::default() });
        let hit = simulate_l2_over_trace(&device, &trace);
        assert!(hit < 0.05, "hit={hit}");
    }

    #[test]
    fn sharded_counts_match_serial_exactly() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        // Mixed reuse: overlapping strided streams across several waves.
        for i in 0..300u64 {
            let base = (i % 7) * 512;
            trace.push(TbWork {
                hmma_ops: (i % 3) as f64,
                b_stream: (base..base + 96).chain((i * 31) % 4096..(i * 31) % 4096 + 8).collect(),
                ..TbWork::default()
            });
        }
        let serial = l2_counts_over_trace(&device, &trace, 1);
        assert!(serial.1 > 0);
        for threads in [2usize, 3, 4, 8, 16] {
            assert_eq!(l2_counts_over_trace(&device, &trace, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn sharded_replay_matches_flat_l2cache_on_one_wave() {
        // With a wave larger than the trace and a single shard, the replay
        // must agree with pushing the interleaved stream through L2Cache.
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        let streams: Vec<Vec<u64>> =
            (0..5u64).map(|i| (i * 100..i * 100 + 40).chain(0..20).collect()).collect();
        for s in &streams {
            trace.push(TbWork { b_stream: s.clone().into(), ..TbWork::default() });
        }
        let (hits, accesses) = l2_counts_over_trace(&device, &trace, 1);

        let mut flat = L2Cache::for_device(&device);
        let mut cursors: Vec<usize> = vec![0; streams.len()];
        let mut remaining = streams.len();
        while remaining > 0 {
            remaining = 0;
            for (s, cur) in streams.iter().zip(cursors.iter_mut()) {
                if *cur >= s.len() {
                    continue;
                }
                let end = (*cur + CHUNK).min(s.len());
                for &a in &s[*cur..end] {
                    flat.access(a);
                }
                *cur = end;
                if end < s.len() {
                    remaining += 1;
                }
            }
        }
        assert_eq!((hits, accesses), (flat.hits(), flat.accesses()));
    }
}
