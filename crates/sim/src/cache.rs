//! A sectored, set-associative LRU model of the GPU L2 cache.
//!
//! Used for the Fig 13(c) experiment: Hierarchy II of TCU-Cache-Aware
//! reordering groups row clusters with similar column sets so that
//! *concurrently resident* thread blocks touch overlapping rows of B and
//! hit in the (SM-shared) L2. To capture that, the trace's per-TB B-access
//! streams are replayed in scheduled-wave order with round-robin
//! interleaving between the blocks of a wave.

use crate::{Device, KernelTrace};

/// A set-associative, 32-byte-sector LRU cache.
#[derive(Debug)]
pub struct L2Cache {
    sets: Vec<Vec<u64>>, // each set: most-recent-last list of sector tags
    ways: usize,
    num_sets: usize,
    hits: u64,
    accesses: u64,
}

impl L2Cache {
    /// Builds a cache model for the given device's L2 parameters.
    pub fn for_device(device: &Device) -> Self {
        let lines = (device.l2_bytes / device.sector_bytes as u64).max(1) as usize;
        let ways = device.l2_ways.max(1);
        let num_sets = (lines / ways).max(1);
        L2Cache { sets: vec![Vec::new(); num_sets], ways, num_sets, hits: 0, accesses: 0 }
    }

    /// Builds a cache with explicit geometry (for tests).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        L2Cache {
            sets: vec![Vec::new(); num_sets.max(1)],
            ways: ways.max(1),
            num_sets: num_sets.max(1),
            hits: 0,
            accesses: 0,
        }
    }

    /// Accesses a sector address; returns `true` on hit.
    pub fn access(&mut self, sector_addr: u64) -> bool {
        self.accesses += 1;
        let set = (sector_addr as usize) % self.num_sets;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|&t| t == sector_addr) {
            // Move to MRU position.
            let tag = lines.remove(pos);
            lines.push(tag);
            self.hits += 1;
            true
        } else {
            if lines.len() >= self.ways {
                lines.remove(0); // evict LRU
            }
            lines.push(sector_addr);
            false
        }
    }

    /// Number of accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate so far (0 when no accesses were made).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Replays a trace's recorded B-sector streams through the device's L2.
///
/// Thread blocks are grouped into waves of `num_sms × occupancy` (the set
/// of concurrently resident blocks); within a wave, accesses interleave
/// round-robin in chunks, approximating concurrent execution. Returns the
/// overall hit rate; 0.0 when the trace recorded no addresses.
pub fn simulate_l2_over_trace(device: &Device, trace: &KernelTrace) -> f64 {
    let mut cache = L2Cache::for_device(device);
    let wave = (device.num_sms * trace.occupancy.max(1)).max(1);
    const CHUNK: usize = 16;
    for wave_tbs in trace.tbs.chunks(wave) {
        let mut cursors: Vec<usize> = vec![0; wave_tbs.len()];
        let mut remaining = wave_tbs.len();
        while remaining > 0 {
            remaining = 0;
            for (tb, cursor) in wave_tbs.iter().zip(cursors.iter_mut()) {
                let stream = &tb.b_sector_addrs;
                if *cursor >= stream.len() {
                    continue;
                }
                let end = (*cursor + CHUNK).min(stream.len());
                for &addr in &stream[*cursor..end] {
                    cache.access(addr);
                }
                *cursor = end;
                if end < stream.len() {
                    remaining += 1;
                }
            }
        }
    }
    cache.hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TbWork;

    #[test]
    fn repeat_access_hits() {
        let mut c = L2Cache::with_geometry(16, 4);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = L2Cache::with_geometry(1, 2);
        c.access(0);
        c.access(1);
        c.access(2); // evicts 0
        assert!(!c.access(0)); // miss: 0 was evicted (and now evicts 1)
        assert!(c.access(2)); // 2 still resident
    }

    #[test]
    fn mru_update_prevents_eviction() {
        let mut c = L2Cache::with_geometry(1, 2);
        c.access(0);
        c.access(1);
        c.access(0); // 0 becomes MRU
        c.access(2); // evicts 1, not 0
        assert!(c.access(0));
    }

    #[test]
    fn hit_rate_zero_without_accesses() {
        assert_eq!(L2Cache::with_geometry(4, 4).hit_rate(), 0.0);
    }

    #[test]
    fn shared_streams_hit_in_same_wave() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        // Two TBs in the same wave touching identical sectors: second
        // pass over the stream hits.
        let addrs: Vec<u64> = (0..1000).collect();
        for _ in 0..2 {
            trace.push(TbWork { b_sector_addrs: addrs.clone(), ..TbWork::default() });
        }
        let hit = simulate_l2_over_trace(&device, &trace);
        assert!(hit > 0.4, "hit={hit}");
    }

    #[test]
    fn disjoint_streams_do_not_hit() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        trace.push(TbWork { b_sector_addrs: (0..1000).collect(), ..TbWork::default() });
        trace
            .push(TbWork { b_sector_addrs: (1_000_000..1_001_000).collect(), ..TbWork::default() });
        let hit = simulate_l2_over_trace(&device, &trace);
        assert!(hit < 0.05, "hit={hit}");
    }
}
