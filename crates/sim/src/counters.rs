//! First-class performance-counter export for the simulator.
//!
//! The paper argues in counters — instruction mixes (Table 2), per-SM
//! timelines (Fig 3/15), L2 sectors (Fig 13c), DRAM traffic — and the
//! simulator computes all of them on the way to `time_ms`. [`CounterSet`]
//! keeps them: every [`crate::SimReport`] now carries the full breakdown so
//! benches and tests can assert on *why* a kernel is fast, not just how
//! fast it is.

/// Issued warp instructions and memory transactions by class — the
/// `inst_executed`/`sectors` breakdown Nsight Compute would report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstructionMix {
    /// Tensor-Core HMMA instructions (raw count, all shapes).
    pub hmma: f64,
    /// Integer IMAD/ALU instructions (coordinate computation).
    pub imad: f64,
    /// FP32 FFMA CUDA-core instructions.
    pub ffma: f64,
    /// Global load sectors issued through the LSU (sparse A + dense B),
    /// excluding the portion prefetched with `cp.async`.
    pub ldg_sectors: f64,
    /// Sparse-A sectors fetched via `cp.async` double buffering (§4.4.2).
    pub cp_async_sectors: f64,
    /// Global store sectors for the output C (epilogue).
    pub stg_sectors: f64,
    /// Shared-memory warp instructions (STS + LDS staging).
    pub sts: f64,
    /// Warp shuffles (`shfl_sync` transposes, §4.4.1).
    pub shfl: f64,
    /// Warp atomics (strict-balance accumulation, §4.5.1).
    pub atom: f64,
}

impl InstructionMix {
    /// Total issued instructions / transactions across all classes.
    pub fn total(&self) -> f64 {
        self.hmma
            + self.imad
            + self.ffma
            + self.ldg_sectors
            + self.cp_async_sectors
            + self.stg_sectors
            + self.sts
            + self.shfl
            + self.atom
    }

    /// Total global-memory sectors moved (loads, async copies and stores).
    pub fn total_sectors(&self) -> f64 {
        self.ldg_sectors + self.cp_async_sectors + self.stg_sectors
    }
}

/// The micro-architectural counters of one simulated kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSet {
    /// Busy cycles per SM (sum of durations of the blocks it ran).
    pub sm_cycles: Vec<f64>,
    /// Thread blocks executed per SM.
    pub sm_blocks: Vec<usize>,
    /// Average resident thread blocks per SM over the makespan
    /// (`busy / makespan`, in `[0, occupancy]`) — the achieved-occupancy
    /// counter behind Fig 3.
    pub sm_occupancy: Vec<f64>,
    /// Resident thread blocks per SM the timing model used.
    pub effective_occupancy: usize,
    /// Issued instructions and memory transactions by class.
    pub instructions: InstructionMix,
    /// L2 sectors served from the cache (dense-B reuse).
    pub l2_sector_hits: f64,
    /// L2 sectors that went to DRAM (B misses plus streaming A and C).
    pub l2_sector_misses: f64,
    /// DRAM traffic in bytes (`l2_sector_misses × sector size`).
    pub dram_bytes: f64,
    /// Memory-latency stall cycles summed over thread blocks (the
    /// dependency-stall term of the analytical pipe model).
    pub stall_cycles: f64,
}

impl CounterSet {
    /// Total busy cycles across all SMs.
    pub fn total_sm_cycles(&self) -> f64 {
        self.sm_cycles.iter().sum()
    }

    /// Total thread blocks executed (equals `SimReport::num_tbs`).
    pub fn total_blocks(&self) -> usize {
        self.sm_blocks.iter().sum()
    }

    /// Overall L2 hit rate implied by the sector counters (0 when the
    /// launch moved no sectors).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_sector_hits + self.l2_sector_misses;
        if total <= 0.0 {
            0.0
        } else {
            self.l2_sector_hits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_totals() {
        let mix = InstructionMix {
            hmma: 10.0,
            imad: 20.0,
            ffma: 1.0,
            ldg_sectors: 30.0,
            cp_async_sectors: 5.0,
            stg_sectors: 4.0,
            sts: 3.0,
            shfl: 2.0,
            atom: 1.0,
        };
        assert_eq!(mix.total(), 76.0);
        assert_eq!(mix.total_sectors(), 39.0);
    }

    #[test]
    fn counter_set_aggregates() {
        let cs = CounterSet {
            sm_cycles: vec![100.0, 50.0],
            sm_blocks: vec![3, 1],
            l2_sector_hits: 30.0,
            l2_sector_misses: 70.0,
            ..CounterSet::default()
        };
        assert_eq!(cs.total_sm_cycles(), 150.0);
        assert_eq!(cs.total_blocks(), 4);
        assert!((cs.l2_hit_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_set_hit_rate_is_zero() {
        assert_eq!(CounterSet::default().l2_hit_rate(), 0.0);
    }
}
