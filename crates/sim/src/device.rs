/// A GPU device model: SM count, per-SM pipe throughputs, latencies, the
/// memory hierarchy, and clocks.
///
/// Throughputs are *warp-instruction issue rates per SM per cycle*; HMMA
/// throughput is in `m16n8k8`-equivalent TF32 instructions. The numbers for
/// the presets are derived from the architecture whitepapers the paper
/// cites ([40, 41]) and the microbenchmark studies it relies on ([25, 48]):
/// HMMA latency 16.0 cycles and `shfl_sync` latency 10.7 cycles are quoted
/// verbatim in §4.4.1.
///
/// # Example
///
/// ```
/// use dtc_sim::Device;
///
/// let ada = Device::rtx4090();
/// assert_eq!(ada.num_sms, 128);
/// // Tweak a field to model a hypothetical part.
/// let mut fat_l2 = ada.clone();
/// fat_l2.l2_bytes *= 2;
/// assert!(fat_l2.l2_bytes > ada.l2_bytes);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name, e.g. `"RTX4090"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// SM clock in GHz.
    pub sm_clock_ghz: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity (ways per set).
    pub l2_ways: usize,
    /// Memory-transaction sector size in bytes (32 on both presets, §4.4.1).
    pub sector_bytes: u32,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Global memory capacity in bytes (for OOM modeling).
    pub global_mem_bytes: u64,
    /// TF32 Tensor-Core throughput: `m16n8k8`-equivalent HMMA per SM per cycle.
    pub tc_hmma_per_cycle: f64,
    /// INT32 ALU throughput: warp IMAD per SM per cycle.
    pub alu_ops_per_cycle: f64,
    /// FP32 CUDA-core throughput: warp FFMA per SM per cycle.
    pub fp32_ops_per_cycle: f64,
    /// LSU throughput: 32-byte sectors served per SM per cycle.
    pub lsu_sectors_per_cycle: f64,
    /// Shared-memory throughput: warp LDS/STS per SM per cycle.
    pub smem_ops_per_cycle: f64,
    /// Warp-shuffle throughput per SM per cycle.
    pub shfl_ops_per_cycle: f64,
    /// Global-memory load latency in cycles.
    pub mem_latency_cycles: f64,
    /// HMMA instruction latency in cycles (16.0 on RTX4090, §4.4.1).
    pub hmma_latency_cycles: f64,
    /// `shfl_sync` latency in cycles (10.7 on RTX4090, §4.4.1).
    pub shfl_latency_cycles: f64,
    /// Fixed thread-block launch/teardown overhead in cycles.
    pub tb_launch_overhead_cycles: f64,
    /// Atomic-add throughput penalty: cycles per warp atomic.
    pub atomic_cost_cycles: f64,
}

impl Device {
    /// RTX4090 (Ada Lovelace, CC 8.9): 128 SMs, 72 MB L2, 1008 GB/s GDDR6X,
    /// 24 GB — the paper's primary evaluation GPU.
    pub fn rtx4090() -> Self {
        Device {
            name: "RTX4090".to_owned(),
            num_sms: 128,
            sm_clock_ghz: 2.52,
            l2_bytes: 72 * 1024 * 1024,
            l2_ways: 16,
            sector_bytes: 32,
            dram_bw_gbps: 1008.0,
            global_mem_bytes: 24 * 1024 * 1024 * 1024,
            tc_hmma_per_cycle: 0.125,
            alu_ops_per_cycle: 2.0,
            fp32_ops_per_cycle: 4.0,
            lsu_sectors_per_cycle: 4.0,
            smem_ops_per_cycle: 4.0,
            shfl_ops_per_cycle: 1.0,
            mem_latency_cycles: 430.0,
            hmma_latency_cycles: 16.0,
            shfl_latency_cycles: 10.7,
            tb_launch_overhead_cycles: 600.0,
            atomic_cost_cycles: 4.0,
        }
    }

    /// RTX3090 (Ampere, CC 8.6): 82 SMs, 6 MB L2, 936 GB/s GDDR6X, 24 GB.
    pub fn rtx3090() -> Self {
        Device {
            name: "RTX3090".to_owned(),
            num_sms: 82,
            sm_clock_ghz: 1.695,
            l2_bytes: 6 * 1024 * 1024,
            l2_ways: 16,
            sector_bytes: 32,
            dram_bw_gbps: 936.0,
            global_mem_bytes: 24 * 1024 * 1024 * 1024,
            tc_hmma_per_cycle: 0.125,
            alu_ops_per_cycle: 2.0,
            fp32_ops_per_cycle: 4.0,
            lsu_sectors_per_cycle: 4.0,
            smem_ops_per_cycle: 4.0,
            shfl_ops_per_cycle: 1.0,
            mem_latency_cycles: 470.0,
            hmma_latency_cycles: 17.0,
            shfl_latency_cycles: 11.0,
            tb_launch_overhead_cycles: 600.0,
            atomic_cost_cycles: 5.0,
        }
    }

    /// A structural 64-bit FNV-1a fingerprint over every field.
    ///
    /// Used as a cache key by trace memoization: two devices collide only
    /// if all fields agree, and — unlike hashing the `Debug` form — the
    /// result is stable under field reordering, costs no formatting
    /// allocation, and (via the exhaustive destructuring below) fails to
    /// compile if a field is added without being hashed.
    pub fn fingerprint(&self) -> u64 {
        let Device {
            name,
            num_sms,
            sm_clock_ghz,
            l2_bytes,
            l2_ways,
            sector_bytes,
            dram_bw_gbps,
            global_mem_bytes,
            tc_hmma_per_cycle,
            alu_ops_per_cycle,
            fp32_ops_per_cycle,
            lsu_sectors_per_cycle,
            smem_ops_per_cycle,
            shfl_ops_per_cycle,
            mem_latency_cycles,
            hmma_latency_cycles,
            shfl_latency_cycles,
            tb_launch_overhead_cycles,
            atomic_cost_cycles,
        } = self;
        let mut fnv = dtc_par::hash::Fnv1a::new();
        {
            let mut eat = |x: u64| fnv.word(x);
            for b in name.bytes() {
                eat(b as u64);
            }
            // Terminator so "AB" + field 1 never aliases "A" + a field
            // starting with byte 'B'.
            eat(0xff);
            eat(*num_sms as u64);
            eat(sm_clock_ghz.to_bits());
            eat(*l2_bytes);
            eat(*l2_ways as u64);
            eat(*sector_bytes as u64);
            eat(dram_bw_gbps.to_bits());
            eat(*global_mem_bytes);
            eat(tc_hmma_per_cycle.to_bits());
            eat(alu_ops_per_cycle.to_bits());
            eat(fp32_ops_per_cycle.to_bits());
            eat(lsu_sectors_per_cycle.to_bits());
            eat(smem_ops_per_cycle.to_bits());
            eat(shfl_ops_per_cycle.to_bits());
            eat(mem_latency_cycles.to_bits());
            eat(hmma_latency_cycles.to_bits());
            eat(shfl_latency_cycles.to_bits());
            eat(tb_launch_overhead_cycles.to_bits());
            eat(atomic_cost_cycles.to_bits());
        }
        fnv.finish()
    }

    /// DRAM bandwidth expressed in bytes per SM-clock cycle (whole device).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbps * 1e9 / (self.sm_clock_ghz * 1e9)
    }

    /// Peak TF32 Tensor-Core throughput of the whole device in GFLOPS
    /// (one `m16n8k8` = 2·16·8·8 = 2048 FLOP).
    pub fn peak_tc_gflops(&self) -> f64 {
        self.tc_hmma_per_cycle * 2048.0 * self.num_sms as f64 * self.sm_clock_ghz
    }

    /// Peak FP32 CUDA-core throughput of the whole device in GFLOPS
    /// (one warp FFMA = 64 FLOP).
    pub fn peak_fp32_gflops(&self) -> f64 {
        self.fp32_ops_per_cycle * 64.0 * self.num_sms as f64 * self.sm_clock_ghz
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::rtx4090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let ada = Device::rtx4090();
        let ampere = Device::rtx3090();
        assert!(ada.num_sms > ampere.num_sms);
        assert!(ada.l2_bytes > ampere.l2_bytes);
        assert!(ada.sm_clock_ghz > ampere.sm_clock_ghz);
        assert_eq!(ada.sector_bytes, 32);
    }

    #[test]
    fn peak_rates_plausible() {
        let ada = Device::rtx4090();
        // RTX4090 TF32 peak is ~82.6 TFLOPS; our model should be within 2x.
        let tflops = ada.peak_tc_gflops() / 1000.0;
        assert!(tflops > 40.0 && tflops < 200.0, "tflops={tflops}");
        // FP32 peak ~82 TFLOPS (dual-issue counted once here, so ~41).
        let fp32 = ada.peak_fp32_gflops() / 1000.0;
        assert!(fp32 > 20.0 && fp32 < 100.0, "fp32={fp32}");
    }

    #[test]
    fn dram_bytes_per_cycle_positive() {
        assert!(Device::rtx4090().dram_bytes_per_cycle() > 100.0);
    }

    #[test]
    fn fingerprint_distinguishes_any_field_change() {
        let base = Device::rtx4090();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        assert_ne!(base.fingerprint(), Device::rtx3090().fingerprint());
        // Every mutation of a preset clone must move the fingerprint.
        let mut d = base.clone();
        d.num_sms += 1;
        assert_ne!(d.fingerprint(), base.fingerprint());
        let mut d = base.clone();
        d.l2_bytes *= 2;
        assert_ne!(d.fingerprint(), base.fingerprint());
        let mut d = base.clone();
        d.mem_latency_cycles += 1.0;
        assert_ne!(d.fingerprint(), base.fingerprint());
        let mut d = base.clone();
        d.name.push('X');
        assert_ne!(d.fingerprint(), base.fingerprint());
    }

    #[test]
    fn paper_quoted_latencies() {
        let ada = Device::rtx4090();
        assert_eq!(ada.hmma_latency_cycles, 16.0);
        assert!((ada.shfl_latency_cycles - 10.7).abs() < 1e-9);
    }
}
