//! Event-driven thread-block execution — a finer-grained alternative to
//! the closed-form model in [`crate::tb_duration_cycles`].
//!
//! The kernel main loop (Alg. 2) is replayed iteration by iteration:
//! sparse-A fetches either block the iteration (no double buffering) or
//! run ahead asynchronously (`cp.async`, §4.4.2) while Tensor-Core compute
//! of the previous tile proceeds; dense-B fetches always face their load
//! latency (no global-to-register prefetch exists, §4.4.2). The two
//! models are validated against each other in the test suite — they must
//! agree on every *ordering* the paper's figures rely on.

use crate::{Device, TbWork};

/// Computes one thread block's duration in cycles by replaying its main
/// loop event by event.
///
/// `occupancy` and `warps_per_tb` play the same roles as in
/// [`crate::tb_duration_cycles_with_occ`]; per-iteration work is the
/// block's aggregate work divided by `iters`.
pub fn tb_duration_event_driven(
    device: &Device,
    occupancy: usize,
    warps_per_tb: usize,
    tb: &TbWork,
    l2_hit_rate: f64,
) -> f64 {
    debug_assert!(
        occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let occ = occupancy as f64;
    let issue_cap = ((occ * warps_per_tb.max(1) as f64) / 16.0).min(1.0);
    let share = |throughput: f64| -> f64 { throughput / occ * issue_cap };

    let iters = tb.iters.round().max(1.0) as usize;
    let n = iters as f64;
    // Per-iteration issue costs, cycles.
    let alu_i = tb.alu_ops / n / share(device.alu_ops_per_cycle);
    let fp_i = tb.fp_ops / n / share(device.fp32_ops_per_cycle);
    let smem_i = tb.smem_ops / n / share(device.smem_ops_per_cycle);
    let shfl_i = tb.shfl_ops / n / share(device.shfl_ops_per_cycle);
    let lsu_a_i = tb.lsu_a_sectors / n / share(device.lsu_sectors_per_cycle);
    let lsu_b_i = tb.lsu_b_sectors / n / share(device.lsu_sectors_per_cycle);
    let tc_i = tb.hmma_ops / n / share(device.tc_hmma_per_cycle);

    // Effective load latency after L2 hits, hidden across resident warps.
    let hide = (occ * warps_per_tb.max(1) as f64 / 2.0).max(1.0);
    let latency = (device.mem_latency_cycles * (1.0 - l2_hit_rate)
        + device.mem_latency_cycles / 8.0 * l2_hit_rate)
        / hide;

    let mut t = device.tb_launch_overhead_cycles / occ;
    // Prologue: first sparse tile fetch (Alg. 2 line 7).
    let mut a_ready = t + lsu_a_i + if tb.lsu_a_sectors > 0.0 { latency } else { 0.0 };
    t += lsu_a_i; // issue cost is paid either way

    for i in 0..iters {
        // The sparse tile this iteration computes on was fetched earlier.
        let cur_a_ready = a_ready;
        // VFetchDense: issue B loads; their data is needed by the mma.
        t += lsu_b_i;
        let b_ready = t + if tb.lsu_b_sectors > 0.0 { latency } else { 0.0 };
        // Coordinate computation and staging for this iteration.
        t += alu_i + fp_i + smem_i + shfl_i;
        // FetchSpAsync for the *next* iteration (double buffering): issue
        // now, completes in the background while this tile computes. Like
        // the prologue, a block with no sparse sectors faces no load
        // latency (the guard was missing here and in the synchronous path
        // below, charging phantom latencies to A-free blocks).
        if i + 1 < iters && tb.overlap_a_fetch {
            t += lsu_a_i;
            a_ready = t + if tb.lsu_a_sectors > 0.0 { latency } else { 0.0 };
        }
        // Wait for this iteration's operands, then Tensor-Core compute.
        t = t.max(b_ready).max(cur_a_ready);
        t += tc_i;
        // Synchronous A fetch for the next iteration (no double buffering):
        // issue + latency serialize after compute.
        if i + 1 < iters && !tb.overlap_a_fetch {
            t += lsu_a_i + if tb.lsu_a_sectors > 0.0 { latency } else { 0.0 };
            a_ready = t;
        }
    }
    // Epilogue: C write-back and atomics.
    t += tb.epilogue_sectors / share(device.lsu_sectors_per_cycle)
        + tb.atom_ops * device.atomic_cost_cycles;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tb_duration_cycles_with_occ;

    fn loop_tb(overlap: bool) -> TbWork {
        TbWork {
            alu_ops: 400.0,
            lsu_a_sectors: 600.0,
            lsu_b_sectors: 1600.0,
            smem_ops: 100.0,
            hmma_ops: 800.0,
            hmma_count: 1600.0,
            epilogue_sectors: 64.0,
            iters: 40.0,
            overlap_a_fetch: overlap,
            ..TbWork::default()
        }
    }

    #[test]
    fn double_buffering_helps_in_both_models() {
        let device = Device::rtx4090();
        for hit in [0.0, 0.5, 0.9] {
            let plain_e = tb_duration_event_driven(&device, 6, 8, &loop_tb(false), hit);
            let dbuf_e = tb_duration_event_driven(&device, 6, 8, &loop_tb(true), hit);
            assert!(dbuf_e < plain_e, "event: {dbuf_e} vs {plain_e} at hit {hit}");
            let plain_a = tb_duration_cycles_with_occ(&device, 6, 8, &loop_tb(false), hit);
            let dbuf_a = tb_duration_cycles_with_occ(&device, 6, 8, &loop_tb(true), hit);
            assert!(dbuf_a < plain_a, "analytic: {dbuf_a} vs {plain_a}");
        }
    }

    #[test]
    fn models_agree_within_a_small_factor() {
        // The closed-form model is a smoothed version of the replay; they
        // must agree within ~2x across workload mixes.
        let device = Device::rtx4090();
        for (alu, lsu_b, hmma, iters) in [
            (100.0, 400.0, 200.0, 10.0),
            (5000.0, 100.0, 50.0, 100.0),
            (10.0, 8000.0, 100.0, 25.0),
            (10.0, 100.0, 9000.0, 50.0),
        ] {
            let tb = TbWork {
                alu_ops: alu,
                lsu_b_sectors: lsu_b,
                hmma_ops: hmma,
                hmma_count: hmma,
                iters,
                ..TbWork::default()
            };
            let e = tb_duration_event_driven(&device, 6, 8, &tb, 0.5);
            let a = tb_duration_cycles_with_occ(&device, 6, 8, &tb, 0.5);
            let ratio = e / a;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "models diverge: event={e} analytic={a} ratio={ratio}"
            );
        }
    }

    #[test]
    fn latency_dominates_short_loops() {
        // One iteration with a cold load: duration at least one latency.
        let device = Device::rtx4090();
        let tb = TbWork { lsu_b_sectors: 4.0, iters: 1.0, ..TbWork::default() };
        let d = tb_duration_event_driven(&device, 1, 8, &tb, 0.0);
        assert!(d > device.mem_latency_cycles / 4.0, "d={d}");
    }

    #[test]
    fn empty_block_costs_launch_overhead_only() {
        let device = Device::rtx4090();
        let d = tb_duration_event_driven(&device, 1, 8, &TbWork::default(), 0.5);
        assert!((d - device.tb_launch_overhead_cycles).abs() < 1e-9);
    }

    #[test]
    fn a_issue_cost_charged_exactly_once_per_iteration() {
        // Audit of the "prologue A-fetch issue cost charged twice" report:
        // with latency zeroed out, only issue costs remain, so the total is
        // exactly `launch + lsu_a_sectors / share` — the prologue issue plus
        // `iters - 1` in-loop issues, i.e. one per iteration, never two.
        // Holds for both buffering modes.
        let mut device = Device::rtx4090();
        device.mem_latency_cycles = 0.0;
        let iters = 4usize;
        for overlap in [false, true] {
            let tb = TbWork {
                lsu_a_sectors: 600.0,
                iters: iters as f64,
                overlap_a_fetch: overlap,
                ..TbWork::default()
            };
            let d = tb_duration_event_driven(&device, 1, 8, &tb, 0.0);
            // occ = 1, warps = 8: issue_cap = 8/16, share = thru * 0.5.
            let share = device.lsu_sectors_per_cycle * 0.5;
            let expected = device.tb_launch_overhead_cycles + tb.lsu_a_sectors / share;
            assert!(
                (d - expected).abs() < 1e-9,
                "overlap={overlap}: d={d} expected={expected} (A issue cost must be paid exactly once per iteration)"
            );
        }
    }

    #[test]
    fn a_free_blocks_face_no_a_latency() {
        // Regression: the in-loop fetch paths used to charge the full load
        // latency every iteration even for blocks with zero sparse sectors,
        // though the prologue correctly guards on `lsu_a_sectors > 0`. An
        // A-free block must cost launch + compute only, and the double
        // buffering flag must be irrelevant to it.
        let device = Device::rtx4090();
        let occ = 6usize;
        let iters = 4usize;
        let mk = |overlap: bool| TbWork {
            hmma_ops: 800.0,
            hmma_count: 800.0,
            iters: iters as f64,
            overlap_a_fetch: overlap,
            ..TbWork::default()
        };
        let plain = tb_duration_event_driven(&device, occ, 8, &mk(false), 0.0);
        let dbuf = tb_duration_event_driven(&device, occ, 8, &mk(true), 0.0);
        assert!(
            (plain - dbuf).abs() < 1e-9,
            "A-free block: buffering mode must not matter, got {plain} vs {dbuf}"
        );
        // occ = 6, warps = 8: issue_cap = min(48/16, 1) = 1.
        let tc_share = device.tc_hmma_per_cycle / occ as f64;
        let expected = device.tb_launch_overhead_cycles / occ as f64 + 800.0 / tc_share;
        assert!(
            (plain - expected).abs() < 1e-9,
            "A-free block charged a phantom A latency: d={plain} expected={expected}"
        );
    }

    #[test]
    fn more_iterations_cost_more_latency_without_prefetch() {
        // Same total work split into more iterations = more exposed
        // latencies when not double buffered.
        let device = Device::rtx4090();
        let mut few = loop_tb(false);
        few.iters = 5.0;
        let mut many = loop_tb(false);
        many.iters = 80.0;
        let d_few = tb_duration_event_driven(&device, 6, 8, &few, 0.0);
        let d_many = tb_duration_event_driven(&device, 6, 8, &many, 0.0);
        assert!(d_many > d_few, "many={d_many} few={d_few}");
    }
}
