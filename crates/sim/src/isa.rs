//! Instruction-level cost table.
//!
//! The kernel models lower straight to aggregate pipe work
//! ([`crate::TbWork`]); this module exposes the underlying per-instruction
//! costs — the vocabulary of the paper's Fig 7 pipeline diagrams and the
//! microbenchmark numbers it quotes (§4.4.1) — both for documentation and
//! for building [`crate::TbWork`] from explicit instruction counts.

use crate::{Device, TbWork};

/// The warp-level instruction kinds appearing in the paper's kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Tensor-Core `mma.m16n8k8`-equivalent (TF32).
    Hmma,
    /// Integer multiply-add (coordinate computation).
    Imad,
    /// 32-bit global load (`LDG.32` — one word per lane).
    Ldg32,
    /// 128-bit vectorized global load (`LDG.128` — float4 per lane).
    Ldg128,
    /// Shared-memory store (`STS`).
    Sts,
    /// Shared-memory load (`LDS`).
    Lds,
    /// Asynchronous global-to-shared copy (`cp.async`).
    CpAsync,
    /// Warp shuffle (`shfl_sync`).
    Shfl,
    /// CUDA-core fused multiply-add (`FFMA`).
    Ffma,
    /// Global atomic add (`ATOM`/`RED`).
    Atom,
    /// 32-bit global store (`STG.32`).
    Stg32,
}

impl Instruction {
    /// Issue latency of the instruction in cycles on the given device —
    /// the paper quotes HMMA = 16.0 and `shfl_sync` = 10.7 on the RTX4090
    /// (§4.4.1); memory instructions carry the global-memory latency.
    pub fn latency_cycles(self, device: &Device) -> f64 {
        match self {
            Instruction::Hmma => device.hmma_latency_cycles,
            Instruction::Shfl => device.shfl_latency_cycles,
            Instruction::Imad | Instruction::Ffma => 4.0,
            Instruction::Sts | Instruction::Lds => 22.0,
            Instruction::Ldg32 | Instruction::Ldg128 | Instruction::CpAsync => {
                device.mem_latency_cycles
            }
            Instruction::Atom => device.mem_latency_cycles * 0.5, // resolves at L2
            Instruction::Stg32 => 8.0,                            // fire-and-forget store
        }
    }

    /// Global-memory sectors moved per warp instruction for a coalesced
    /// access (0 for compute/shared instructions).
    pub fn sectors_per_warp(self) -> f64 {
        match self {
            Instruction::Ldg32 | Instruction::Stg32 | Instruction::CpAsync => 4.0,
            Instruction::Ldg128 => 16.0,
            Instruction::Atom => 4.0,
            _ => 0.0,
        }
    }
}

/// Explicit warp-instruction counts for one thread block; a lower-level
/// alternative to filling [`TbWork`] by hand.
#[derive(Debug, Clone, Default)]
pub struct InstructionCounts {
    /// `(instruction, warp-level count)` pairs; duplicates accumulate.
    pub counts: Vec<(Instruction, f64)>,
    /// Main-loop trip count (for stall modeling).
    pub iters: f64,
    /// Whether sparse-operand loads are double-buffered (`cp.async`).
    pub double_buffered: bool,
}

impl InstructionCounts {
    /// Adds `count` executions of `instr`.
    pub fn add(&mut self, instr: Instruction, count: f64) -> &mut Self {
        self.counts.push((instr, count));
        self
    }

    /// Lowers the counts to the aggregate [`TbWork`] the simulator consumes.
    /// Loads issued via `cp.async` are treated as sparse-operand traffic
    /// (they are what double buffering prefetches); `LDG.*` count as dense
    /// traffic.
    pub fn to_tb_work(&self) -> TbWork {
        let mut tb = TbWork {
            iters: self.iters,
            overlap_a_fetch: self.double_buffered,
            ..TbWork::default()
        };
        for &(instr, count) in &self.counts {
            match instr {
                Instruction::Hmma => {
                    tb.hmma_ops += count;
                    tb.hmma_count += count;
                }
                Instruction::Imad => {
                    tb.alu_ops += count;
                    tb.imad_count += count;
                }
                Instruction::Ffma => tb.fp_ops += count,
                Instruction::Ldg32 | Instruction::Ldg128 => {
                    tb.lsu_b_sectors += count * instr.sectors_per_warp();
                }
                Instruction::CpAsync => {
                    tb.lsu_a_sectors += count * instr.sectors_per_warp();
                }
                Instruction::Sts | Instruction::Lds => tb.smem_ops += count,
                Instruction::Shfl => tb.shfl_ops += count,
                Instruction::Atom => tb.atom_ops += count,
                Instruction::Stg32 => {
                    tb.epilogue_sectors += count * instr.sectors_per_warp();
                }
            }
        }
        tb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, KernelTrace, SimOptions};

    #[test]
    fn paper_quoted_latencies_surface() {
        let d = Device::rtx4090();
        assert_eq!(Instruction::Hmma.latency_cycles(&d), 16.0);
        assert!((Instruction::Shfl.latency_cycles(&d) - 10.7).abs() < 1e-9);
    }

    #[test]
    fn vectorized_load_moves_4x_the_sectors() {
        assert_eq!(
            Instruction::Ldg128.sectors_per_warp(),
            4.0 * Instruction::Ldg32.sectors_per_warp()
        );
    }

    #[test]
    fn counts_lower_to_consistent_tb_work() {
        let mut counts =
            InstructionCounts { iters: 10.0, double_buffered: true, ..Default::default() };
        counts
            .add(Instruction::Hmma, 100.0)
            .add(Instruction::Imad, 50.0)
            .add(Instruction::Ldg128, 8.0)
            .add(Instruction::CpAsync, 4.0)
            .add(Instruction::Sts, 6.0)
            .add(Instruction::Stg32, 16.0)
            .add(Instruction::Atom, 2.0);
        let tb = counts.to_tb_work();
        assert_eq!(tb.hmma_ops, 100.0);
        assert_eq!(tb.imad_count, 50.0);
        assert_eq!(tb.lsu_b_sectors, 8.0 * 16.0);
        assert_eq!(tb.lsu_a_sectors, 4.0 * 4.0);
        assert_eq!(tb.smem_ops, 6.0);
        assert_eq!(tb.epilogue_sectors, 16.0 * 4.0);
        assert_eq!(tb.atom_ops, 2.0);
        assert!(tb.overlap_a_fetch);
        // The lowered block simulates end to end.
        let mut trace = KernelTrace::new(4, 8);
        trace.push(tb);
        let r = simulate(&Device::rtx4090(), &trace, &SimOptions::default());
        assert!(r.time_ms > 0.0);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut counts = InstructionCounts::default();
        counts.add(Instruction::Imad, 5.0).add(Instruction::Imad, 7.0);
        assert_eq!(counts.to_tb_work().alu_ops, 12.0);
    }
}
