//! Kernel traces: per-thread-block work descriptors, compressed by
//! interning duplicate descriptors into *duration classes*.
//!
//! Real launches of the paper's kernels put 10⁵–10⁶ thread blocks on the
//! device, but the work descriptors are overwhelmingly duplicates (every
//! full row window of the same shape lowers to the same instruction mix).
//! [`KernelTrace`] therefore stores one [`TbWork`] per *unique* descriptor
//! (the class table) plus a per-block class id, so the simulator computes
//! durations and stalls once per class instead of once per block, while
//! the per-block launch order — which scheduling and cache replay depend
//! on — is fully preserved.

use crate::occupancy::KernelResources;
use crate::stream::SectorStream;
use dtc_par::hash::{fnv1a, Fnv1a};
use dtc_par::FrontTier;
use std::collections::HashMap;

/// The per-thread-block work descriptor a kernel implementation lowers to.
///
/// All `*_ops` fields are warp-level instruction counts for the whole
/// thread block; `*_sectors` fields are 32-byte global-memory transactions.
/// `hmma_ops` is in `m16n8k8`-equivalent units (time), while `hmma_count`
/// is the raw executed-instruction count used for the `#IMAD/#HMMA` ratio
/// (e.g. one `m16n8k4` contributes 0.5 to `hmma_ops` but 1.0 to
/// `hmma_count`).
#[derive(Debug, Clone, Default)]
pub struct TbWork {
    /// Warp IMAD / integer-ALU instructions (coordinate computation).
    pub alu_ops: f64,
    /// Warp FFMA CUDA-core instructions (for CUDA-core kernels).
    pub fp_ops: f64,
    /// Global sectors fetched for the sparse operand A.
    pub lsu_a_sectors: f64,
    /// Global sectors fetched for the dense operand B.
    pub lsu_b_sectors: f64,
    /// Shared-memory warp instructions (STS + LDS staging).
    pub smem_ops: f64,
    /// Tensor-Core work in `m16n8k8`-equivalents (determines TC-pipe time).
    pub hmma_ops: f64,
    /// Raw HMMA instruction count (for the `#IMAD/#HMMA` metric).
    pub hmma_count: f64,
    /// Raw IMAD instruction count (defaults to `alu_ops` when lowering).
    pub imad_count: f64,
    /// Warp shuffle instructions (`shfl_sync` transposes).
    pub shfl_ops: f64,
    /// Global sectors written for the output C (plus balanced-kernel extras).
    pub epilogue_sectors: f64,
    /// Warp atomic operations (strict-balance accumulation).
    pub atom_ops: f64,
    /// Main-loop iterations — used for dependency-stall modeling.
    pub iters: f64,
    /// Sparse-A fetch is prefetched with `cp.async` double buffering and
    /// overlaps Tensor-Core compute (§4.4.2).
    pub overlap_a_fetch: bool,
    /// Run-length-encoded B-access sector stream for L2 simulation
    /// (optional; only populated when the caller wants a cache simulation).
    /// Not part of the duration class — the trace stores it per block.
    pub b_stream: SectorStream,
}

impl TbWork {
    /// The twelve numeric work fields, in the fixed hashing order. Shared
    /// by the interning key and external analyzers (`dtc-verify`) so both
    /// agree on what "the work" of a block is.
    pub fn numeric_fields(&self) -> [(&'static str, f64); 12] {
        [
            ("alu_ops", self.alu_ops),
            ("fp_ops", self.fp_ops),
            ("lsu_a_sectors", self.lsu_a_sectors),
            ("lsu_b_sectors", self.lsu_b_sectors),
            ("smem_ops", self.smem_ops),
            ("hmma_ops", self.hmma_ops),
            ("hmma_count", self.hmma_count),
            ("imad_count", self.imad_count),
            ("shfl_ops", self.shfl_ops),
            ("epilogue_sectors", self.epilogue_sectors),
            ("atom_ops", self.atom_ops),
            ("iters", self.iters),
        ]
    }

    /// Debug-build sanity check for lowering sites: every work field must
    /// be finite and non-negative at the moment the block is frozen into a
    /// trace. Compiled out in release builds; the full (release-mode)
    /// enforcement lives in `dtc-verify`'s `nonfinite-count` lint.
    #[inline]
    pub fn debug_validate(&self) {
        if cfg!(debug_assertions) {
            for (name, v) in self.numeric_fields() {
                debug_assert!(
                    v.is_finite() && v >= 0.0,
                    "TbWork::{name} = {v} must be finite and non-negative"
                );
            }
        }
    }
}

/// FNV-1a over the duration-determining fields of a [`TbWork`] — every
/// field except the sector stream, compared bit-for-bit (`f64::to_bits`)
/// so interning never conflates values that would time differently.
fn work_key(tb: &TbWork) -> u64 {
    let mut h = Fnv1a::new();
    for v in work_fields(tb) {
        h.word_bytes(v.to_bits());
    }
    h.word_bytes(tb.overlap_a_fetch as u64);
    h.finish()
}

/// The twelve numeric work fields, in a fixed order, for hashing/equality.
fn work_fields(tb: &TbWork) -> [f64; 12] {
    tb.numeric_fields().map(|(_, v)| v)
}

/// Bitwise equality of the duration-determining fields.
fn work_eq(a: &TbWork, b: &TbWork) -> bool {
    a.overlap_a_fetch == b.overlap_a_fetch
        && work_fields(a).iter().zip(work_fields(b).iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The duration class identity as 13 plain words (12 field bit patterns +
/// the overlap flag). Derived `PartialEq` on the words is exactly
/// [`work_eq`] on the source blocks, so a front-tier hit verified by this
/// key can never conflate two blocks that would time differently.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkClassKey([u64; 13]);

impl WorkClassKey {
    fn of(tb: &TbWork) -> Self {
        let mut w = [0u64; 13];
        for (slot, v) in w.iter_mut().zip(work_fields(tb)) {
            *slot = v.to_bits();
        }
        w[12] = tb.overlap_a_fetch as u64;
        WorkClassKey(w)
    }

    /// Cheap word-wise front hash: 13 fold steps, versus the 104 byte-wise
    /// steps of the exact-tier [`work_key`]. Lossier mixing is fine here —
    /// a bad slot spread only costs front misses, never wrong classes.
    ///
    /// Each word is pre-folded with `x ^ (x >> 32)` first: the words are
    /// `f64` bit patterns of small counts, whose entropy sits in the
    /// exponent and high mantissa bits, and FNV's multiply only carries
    /// entropy upward — without the fold every class would land in the
    /// same low-bits slot.
    fn front_hash(&self) -> u64 {
        fnv1a(dtc_par::hash::FNV_OFFSET, self.0.iter().map(|&x| x ^ (x >> 32)))
    }
}

/// Front-tier slots per trace. Real lowerings produce tens of distinct
/// classes, so 128 direct-mapped slots hold the working set; the slab
/// stays small (~14 KiB) so cloning a trace — the trace-cache hit path —
/// stays cheap.
const INTERN_FRONT_SLOTS: usize = 128;

static EMPTY_STREAM: SectorStream = SectorStream::new();

/// A lowered kernel: launch-wide configuration plus a *compressed* block
/// list — a class table of unique [`TbWork`] descriptors, a per-block
/// class id in launch order, and per-block sector streams when recorded.
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// Unique work descriptors (their `b_stream` is always empty).
    classes: Vec<TbWork>,
    /// Per thread block, in launch order: index into `classes`.
    class_ids: Vec<u32>,
    /// Per-block B-sector streams; empty vector when no block recorded any.
    streams: Vec<SectorStream>,
    /// Work-field hash → candidate class indices (collision bucket).
    index: HashMap<u64, Vec<u32>>,
    /// Lossy front tier over the interning table: last class seen per
    /// direct-mapped slot, verified by full [`WorkClassKey`] equality. A
    /// hit skips the byte-granular [`work_key`] and the bucket scan.
    front: FrontTier<WorkClassKey, u32>,
    /// When false, `push` appends a fresh class per block (the legacy
    /// uncompressed layout, kept for benchmarking and equivalence tests).
    interning: bool,
    /// Thread blocks resident per SM (the paper measures 6 for DTC-SpMM).
    pub occupancy: usize,
    /// Warps per thread block.
    pub warps_per_tb: usize,
    /// L2 hit rate assumed for B traffic when the cache is not simulated.
    pub assumed_l2_hit_rate: f64,
    /// Per-block resource usage of the kernel this trace was lowered from
    /// (registers, shared memory, warps). Optional: lowering sites attach
    /// it so `dtc-verify` can re-derive the legal occupancy (paper eq. 6)
    /// and check the trace's `occupancy` against it.
    resources: Option<KernelResources>,
}

impl KernelTrace {
    /// Creates an empty trace with the given occupancy and warp count.
    ///
    /// Both must be positive: an occupancy of 0 means the kernel cannot
    /// launch at all, and downstream timing (which divides per-SM capacity
    /// by the resident-block count) no longer silently clamps it to 1.
    pub fn new(occupancy: usize, warps_per_tb: usize) -> Self {
        assert!(
            occupancy > 0,
            "kernel occupancy must be positive (a 0 means the block cannot fit on an SM)"
        );
        assert!(warps_per_tb > 0, "warps_per_tb must be positive");
        KernelTrace {
            classes: Vec::new(),
            class_ids: Vec::new(),
            streams: Vec::new(),
            index: HashMap::new(),
            front: FrontTier::new("intern", INTERN_FRONT_SLOTS),
            interning: true,
            occupancy,
            warps_per_tb,
            assumed_l2_hit_rate: 0.5,
            resources: None,
        }
    }

    /// Attaches the per-block resource usage this trace was lowered from.
    pub fn set_resources(&mut self, resources: KernelResources) {
        self.resources = Some(resources);
    }

    /// The per-block resource usage, when the lowering site attached it.
    pub fn resources(&self) -> Option<&KernelResources> {
        self.resources.as_ref()
    }

    /// Whether class interning is enabled for this trace.
    pub fn interning(&self) -> bool {
        self.interning
    }

    /// Enables or disables class interning for subsequent [`push`]es.
    /// With interning off every block gets its own class — the exact
    /// pre-compression layout, retained as the benchmark baseline and the
    /// reference side of the equivalence tests.
    ///
    /// [`push`]: KernelTrace::push
    pub fn set_interning(&mut self, on: bool) {
        self.interning = on;
    }

    /// Appends a thread block (defaulting `imad_count` to `alu_ops` when
    /// the caller left it zero but issued ALU work), interning its work
    /// descriptor into the class table and storing its sector stream — if
    /// any — per block.
    pub fn push(&mut self, mut tb: TbWork) {
        if tb.imad_count == 0.0 && tb.alu_ops > 0.0 {
            tb.imad_count = tb.alu_ops;
        }
        let mut stream = std::mem::take(&mut tb.b_stream);
        stream.shrink_to_fit(); // frozen once stored: footprint == runs
        let class = if self.interning { self.intern(tb) } else { self.append_class(tb) };
        self.class_ids.push(class);
        // Streams are stored lazily: traces lowered without address
        // recording never allocate the per-block vector at all.
        if !stream.is_empty() {
            self.streams.resize(self.class_ids.len() - 1, SectorStream::new());
            self.streams.push(stream);
        } else if !self.streams.is_empty() {
            self.streams.push(SectorStream::new());
        }
    }

    fn intern(&mut self, tb: TbWork) -> u32 {
        let class_key = WorkClassKey::of(&tb);
        let front_hash = class_key.front_hash();
        if let Some(c) = self.front.get(front_hash, &class_key) {
            return c;
        }
        let key = work_key(&tb);
        if let Some(bucket) = self.index.get(&key) {
            for &c in bucket {
                if work_eq(&self.classes[c as usize], &tb) {
                    self.front.insert(front_hash, class_key, c);
                    return c;
                }
            }
        }
        let c = self.classes.len() as u32;
        self.classes.push(tb);
        self.index.entry(key).or_default().push(c);
        self.front.insert(front_hash, class_key, c);
        c
    }

    fn append_class(&mut self, tb: TbWork) -> u32 {
        let c = self.classes.len() as u32;
        self.classes.push(tb);
        c
    }

    /// Number of thread blocks.
    pub fn num_tbs(&self) -> usize {
        self.class_ids.len()
    }

    /// Number of unique duration classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The class table: one [`TbWork`] per unique descriptor.
    pub fn classes(&self) -> &[TbWork] {
        &self.classes
    }

    /// Per-block class ids, in launch order.
    pub fn class_ids(&self) -> &[u32] {
        &self.class_ids
    }

    /// How many blocks each class represents (indexed like
    /// [`classes`](KernelTrace::classes)).
    pub fn class_multiplicities(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes.len()];
        for &c in &self.class_ids {
            counts[c as usize] += 1;
        }
        counts
    }

    /// The work descriptor of block `i` (its interned class).
    pub fn tb(&self, i: usize) -> &TbWork {
        &self.classes[self.class_ids[i] as usize]
    }

    /// Iterates the per-block work descriptors in launch order — the view
    /// the uncompressed trace used to expose directly.
    pub fn iter_tbs(&self) -> impl Iterator<Item = &TbWork> + '_ {
        self.class_ids.iter().map(|&c| &self.classes[c as usize])
    }

    /// The recorded B-sector stream of block `i` (empty when the trace was
    /// lowered without address recording).
    pub fn stream(&self, i: usize) -> &SectorStream {
        self.streams.get(i).unwrap_or(&EMPTY_STREAM)
    }

    /// Whether any block recorded a sector stream.
    pub fn has_streams(&self) -> bool {
        !self.streams.is_empty()
    }

    /// Blocks-per-class compression ratio (1.0 when every block is unique).
    pub fn compression_ratio(&self) -> f64 {
        if self.classes.is_empty() {
            1.0
        } else {
            self.class_ids.len() as f64 / self.classes.len() as f64
        }
    }

    /// Approximate heap footprint of the trace in bytes: class table,
    /// class-id vector and encoded sector streams.
    pub fn memory_bytes(&self) -> usize {
        self.classes.capacity() * std::mem::size_of::<TbWork>()
            + self.class_ids.capacity() * std::mem::size_of::<u32>()
            + self.streams.capacity() * std::mem::size_of::<SectorStream>()
            + self.streams.iter().map(|s| s.memory_bytes()).sum::<usize>()
    }

    /// Total Tensor-Core work across all blocks (`m16n8k8`-equivalents),
    /// summed in launch order (bit-compatible with the per-block layout).
    pub fn total_hmma_ops(&self) -> f64 {
        self.iter_tbs().map(|tb| tb.hmma_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_defaults_imad_count() {
        let mut t = KernelTrace::new(6, 8);
        t.push(TbWork { alu_ops: 42.0, ..TbWork::default() });
        assert_eq!(t.tb(0).imad_count, 42.0);
        t.push(TbWork { alu_ops: 42.0, imad_count: 7.0, ..TbWork::default() });
        assert_eq!(t.tb(1).imad_count, 7.0);
        // The two differ in imad_count, so they are distinct classes.
        assert_eq!(t.num_classes(), 2);
    }

    #[test]
    fn totals() {
        let mut t = KernelTrace::new(6, 8);
        t.push(TbWork { hmma_ops: 1.5, ..TbWork::default() });
        t.push(TbWork { hmma_ops: 2.5, ..TbWork::default() });
        assert_eq!(t.num_tbs(), 2);
        assert_eq!(t.total_hmma_ops(), 4.0);
    }

    #[test]
    fn duplicate_blocks_intern_to_one_class() {
        let mut t = KernelTrace::new(6, 8);
        for _ in 0..1000 {
            t.push(TbWork { hmma_ops: 3.0, alu_ops: 5.0, iters: 4.0, ..TbWork::default() });
        }
        for _ in 0..500 {
            t.push(TbWork { hmma_ops: 7.0, alu_ops: 5.0, iters: 4.0, ..TbWork::default() });
        }
        assert_eq!(t.num_tbs(), 1500);
        assert_eq!(t.num_classes(), 2);
        assert_eq!(t.class_multiplicities(), vec![1000, 500]);
        assert!((t.compression_ratio() - 750.0).abs() < 1e-12);
    }

    #[test]
    fn interning_distinguishes_every_work_field() {
        // Each single-field perturbation must create a new class.
        let base = TbWork { iters: 2.0, ..TbWork::default() };
        let variants: Vec<TbWork> = vec![
            TbWork { alu_ops: 1.0, ..base.clone() },
            TbWork { fp_ops: 1.0, ..base.clone() },
            TbWork { lsu_a_sectors: 1.0, ..base.clone() },
            TbWork { lsu_b_sectors: 1.0, ..base.clone() },
            TbWork { smem_ops: 1.0, ..base.clone() },
            TbWork { hmma_ops: 1.0, ..base.clone() },
            TbWork { hmma_count: 1.0, ..base.clone() },
            TbWork { imad_count: 1.0, ..base.clone() },
            TbWork { shfl_ops: 1.0, ..base.clone() },
            TbWork { epilogue_sectors: 1.0, ..base.clone() },
            TbWork { atom_ops: 1.0, ..base.clone() },
            TbWork { iters: 3.0, ..base.clone() },
            TbWork { overlap_a_fetch: true, ..base.clone() },
        ];
        let mut t = KernelTrace::new(6, 8);
        t.push(base);
        let n = variants.len();
        for v in variants {
            t.push(v);
        }
        assert_eq!(t.num_classes(), n + 1);
    }

    #[test]
    fn streams_stay_per_block_under_interning() {
        let mut t = KernelTrace::new(6, 8);
        let mk = |addr: u64| TbWork {
            hmma_ops: 2.0,
            b_stream: (addr..addr + 4).collect(),
            ..TbWork::default()
        };
        t.push(mk(0));
        t.push(mk(100));
        t.push(mk(0));
        assert_eq!(t.num_classes(), 1, "same work interns to one class");
        assert_eq!(t.stream(0).to_vec(), (0..4).collect::<Vec<u64>>());
        assert_eq!(t.stream(1).to_vec(), (100..104).collect::<Vec<u64>>());
        assert_eq!(t.stream(2).to_vec(), (0..4).collect::<Vec<u64>>());
    }

    #[test]
    fn no_streams_means_no_per_block_allocation() {
        let mut t = KernelTrace::new(6, 8);
        for _ in 0..100 {
            t.push(TbWork { hmma_ops: 1.0, ..TbWork::default() });
        }
        assert!(!t.has_streams());
        assert!(t.stream(50).is_empty());
    }

    #[test]
    fn late_first_stream_backfills_empties() {
        let mut t = KernelTrace::new(6, 8);
        t.push(TbWork::default());
        t.push(TbWork { b_stream: vec![9, 10].into(), ..TbWork::default() });
        assert!(t.has_streams());
        assert!(t.stream(0).is_empty());
        assert_eq!(t.stream(1).len(), 2);
    }

    #[test]
    fn legacy_mode_keeps_one_class_per_block() {
        let mut t = KernelTrace::new(6, 8);
        t.set_interning(false);
        for _ in 0..10 {
            t.push(TbWork { hmma_ops: 1.0, ..TbWork::default() });
        }
        assert_eq!(t.num_classes(), 10);
        assert_eq!(t.compression_ratio(), 1.0);
    }

    #[test]
    fn compressed_memory_is_smaller_on_duplicate_heavy_traces() {
        let mut interned = KernelTrace::new(6, 8);
        let mut legacy = KernelTrace::new(6, 8);
        legacy.set_interning(false);
        for i in 0..10_000 {
            let tb = TbWork { hmma_ops: (i % 8) as f64, iters: 4.0, ..TbWork::default() };
            interned.push(tb.clone());
            legacy.push(tb);
        }
        assert!(
            interned.memory_bytes() * 10 <= legacy.memory_bytes(),
            "interned {} vs legacy {}",
            interned.memory_bytes(),
            legacy.memory_bytes()
        );
    }
}
