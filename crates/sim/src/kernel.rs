/// The per-thread-block work descriptor a kernel implementation lowers to.
///
/// All `*_ops` fields are warp-level instruction counts for the whole
/// thread block; `*_sectors` fields are 32-byte global-memory transactions.
/// `hmma_ops` is in `m16n8k8`-equivalent units (time), while `hmma_count`
/// is the raw executed-instruction count used for the `#IMAD/#HMMA` ratio
/// (e.g. one `m16n8k4` contributes 0.5 to `hmma_ops` but 1.0 to
/// `hmma_count`).
#[derive(Debug, Clone, Default)]
pub struct TbWork {
    /// Warp IMAD / integer-ALU instructions (coordinate computation).
    pub alu_ops: f64,
    /// Warp FFMA CUDA-core instructions (for CUDA-core kernels).
    pub fp_ops: f64,
    /// Global sectors fetched for the sparse operand A.
    pub lsu_a_sectors: f64,
    /// Global sectors fetched for the dense operand B.
    pub lsu_b_sectors: f64,
    /// Shared-memory warp instructions (STS + LDS staging).
    pub smem_ops: f64,
    /// Tensor-Core work in `m16n8k8`-equivalents (determines TC-pipe time).
    pub hmma_ops: f64,
    /// Raw HMMA instruction count (for the `#IMAD/#HMMA` metric).
    pub hmma_count: f64,
    /// Raw IMAD instruction count (defaults to `alu_ops` when lowering).
    pub imad_count: f64,
    /// Warp shuffle instructions (`shfl_sync` transposes).
    pub shfl_ops: f64,
    /// Global sectors written for the output C (plus balanced-kernel extras).
    pub epilogue_sectors: f64,
    /// Warp atomic operations (strict-balance accumulation).
    pub atom_ops: f64,
    /// Main-loop iterations — used for dependency-stall modeling.
    pub iters: f64,
    /// Sparse-A fetch is prefetched with `cp.async` double buffering and
    /// overlaps Tensor-Core compute (§4.4.2).
    pub overlap_a_fetch: bool,
    /// Recorded B-access sector addresses for L2 simulation (optional;
    /// only populated when the caller wants a cache simulation).
    pub b_sector_addrs: Vec<u64>,
}

/// A lowered kernel: one [`TbWork`] per thread block plus launch-wide
/// configuration.
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// Thread blocks in launch (block-index) order.
    pub tbs: Vec<TbWork>,
    /// Thread blocks resident per SM (the paper measures 6 for DTC-SpMM).
    pub occupancy: usize,
    /// Warps per thread block.
    pub warps_per_tb: usize,
    /// L2 hit rate assumed for B traffic when the cache is not simulated.
    pub assumed_l2_hit_rate: f64,
}

impl KernelTrace {
    /// Creates an empty trace with the given occupancy and warp count.
    pub fn new(occupancy: usize, warps_per_tb: usize) -> Self {
        KernelTrace { tbs: Vec::new(), occupancy, warps_per_tb, assumed_l2_hit_rate: 0.5 }
    }

    /// Appends a thread block (defaulting `imad_count` to `alu_ops` when
    /// the caller left it zero but issued ALU work).
    pub fn push(&mut self, mut tb: TbWork) {
        if tb.imad_count == 0.0 && tb.alu_ops > 0.0 {
            tb.imad_count = tb.alu_ops;
        }
        self.tbs.push(tb);
    }

    /// Number of thread blocks.
    pub fn num_tbs(&self) -> usize {
        self.tbs.len()
    }

    /// Total Tensor-Core work across all blocks (`m16n8k8`-equivalents).
    pub fn total_hmma_ops(&self) -> f64 {
        self.tbs.iter().map(|tb| tb.hmma_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_defaults_imad_count() {
        let mut t = KernelTrace::new(6, 8);
        t.push(TbWork { alu_ops: 42.0, ..TbWork::default() });
        assert_eq!(t.tbs[0].imad_count, 42.0);
        t.push(TbWork { alu_ops: 42.0, imad_count: 7.0, ..TbWork::default() });
        assert_eq!(t.tbs[1].imad_count, 7.0);
    }

    #[test]
    fn totals() {
        let mut t = KernelTrace::new(6, 8);
        t.push(TbWork { hmma_ops: 1.5, ..TbWork::default() });
        t.push(TbWork { hmma_ops: 2.5, ..TbWork::default() });
        assert_eq!(t.num_tbs(), 2);
        assert_eq!(t.total_hmma_ops(), 4.0);
    }
}
