//! Analytical GPU simulator substrate for the DTC-SpMM reproduction.
//!
//! The paper's performance claims are stated in micro-architectural terms:
//! instruction mixes (`#IMAD/#HMMA`, Table 2), Tensor-Core pipeline
//! utilization (Table 2, Fig 14), per-SM busy/idle timelines under the
//! thread-block scheduling policy of eq. (1) (Fig 3, Fig 15), L2 hit rates
//! (Fig 13c), and memory traffic. This crate models exactly those
//! quantities:
//!
//! - [`Device`] — an SM-array model with per-pipe throughputs and latencies
//!   (presets: [`Device::rtx4090`], [`Device::rtx3090`]);
//! - [`KernelTrace`] / [`TbWork`] — a kernel is lowered to per-thread-block
//!   instruction and memory work, produced by the kernel crates. The trace
//!   interns duplicate work descriptors into duration *classes* and stores
//!   B-access streams run-length-encoded ([`SectorStream`]), so large
//!   launches cost memory and timing work proportional to their structural
//!   variety, not their block count;
//! - [`simulate`] — schedules thread blocks onto SMs with the paper's
//!   policy model, combines per-pipe work into per-TB durations, and
//!   produces a [`SimReport`] with makespan, per-SM timelines, pipeline
//!   utilization and instruction counts;
//! - [`cache::L2Cache`] — a sectored, set-associative LRU model for the
//!   L2 hit-rate experiments, replayed sharded by set index over `dtc-par`.
//!
//! # Example
//!
//! ```
//! use dtc_sim::{simulate, Device, KernelTrace, SimOptions, TbWork};
//!
//! let device = Device::rtx4090();
//! let mut trace = KernelTrace::new(6, 8);
//! trace.push(TbWork { hmma_ops: 100.0, hmma_count: 200.0, ..TbWork::default() });
//! let report = simulate(&device, &trace, &SimOptions::default());
//! assert!(report.time_ms > 0.0);
//! assert!(report.tc_utilization > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod counters;
mod device;
mod exec;
pub mod isa;
mod kernel;
pub mod occupancy;
mod pipeline;
mod report;
pub mod roofline;
mod scheduler;
mod stream;

pub use cache::{l2_counts_over_trace, l2_shard_counts, simulate_l2_over_trace, L2Cache};
pub use counters::{CounterSet, InstructionMix};
pub use device::Device;
pub use exec::tb_duration_event_driven;
pub use kernel::{KernelTrace, TbWork};
pub use pipeline::{
    tb_duration_cycles, tb_duration_cycles_with_occ, tb_pipe_cycles, tb_stall_cycles,
};
pub use report::SimReport;
pub use scheduler::{schedule, sm_for_block, ScheduleOutcome};
pub use stream::{SectorCursor, SectorRun, SectorStream};

/// How per-thread-block durations are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Closed-form pipe model (fast; the default).
    #[default]
    Analytical,
    /// Iteration-by-iteration replay of the kernel main loop
    /// ([`tb_duration_event_driven`]) — slower, finer latency treatment.
    EventDriven,
}

/// Options controlling a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Simulate the L2 cache over the trace's recorded B-access streams.
    /// Costs time proportional to the number of recorded sector accesses;
    /// when off, [`SimReport::l2_hit_rate`] is `None` and DRAM traffic
    /// assumes the trace's `assumed_l2_hit_rate`.
    pub simulate_l2: bool,
    /// Timing-model choice for per-block durations.
    pub timing: TimingMode,
}

/// Per-class timing results, computed once per unique work descriptor.
struct ClassTiming {
    /// Block duration in SM cycles (pipe + stall, or event-driven replay).
    duration: f64,
    /// Dependency-stall cycles (exported as a counter).
    stall: f64,
    /// Tensor-Core busy cycles contributed by one block of this class.
    tc_busy: f64,
}

/// Runs a kernel trace on a device model and returns the performance report.
///
/// This is the single entry point every kernel implementation uses: lower
/// the kernel to a [`KernelTrace`], then call `simulate`.
///
/// Durations and stall cycles are computed once per duration *class* (the
/// trace's interned unique work descriptors) and expanded to launch order
/// by class id, so both timing paths cost O(classes) instead of O(blocks).
/// All floating-point accumulation still walks blocks in launch order with
/// the per-class cached values, keeping every [`SimReport`] field
/// bit-identical to the uncompressed model.
pub fn simulate(device: &Device, trace: &KernelTrace, options: &SimOptions) -> SimReport {
    // Optional L2 simulation over the recorded access streams.
    let l2_hit_rate = if options.simulate_l2 {
        let _span = dtc_telemetry::span("sim.l2");
        Some(cache::simulate_l2_over_trace(device, trace))
    } else {
        None
    };
    let effective_hit = l2_hit_rate.unwrap_or(trace.assumed_l2_hit_rate);

    // Effective occupancy: a launch with fewer blocks than SM slots leaves
    // each resident block a larger share of its SM. The trace's occupancy
    // is legal by construction (asserted positive at `KernelTrace::new`;
    // `dtc-verify` lints a zero as a hard violation) — no silent clamping.
    debug_assert!(trace.occupancy > 0, "trace occupancy must be positive");
    let eff_occ = trace.occupancy.min(trace.num_tbs().div_ceil(device.num_sms.max(1)).max(1));

    // Per-class timing, fanned out over host threads. Each class's timing is
    // a pure function of its own work fields, and results land in their
    // class-indexed slots, so expansion below is deterministic at any
    // thread count. Event-driven replay costs O(iters) per class while the
    // analytical path is O(1), so classes are weighted by their iteration
    // count when cutting shards — one giant class can no longer serialize
    // the timing pass.
    let class_weights: Vec<u64> =
        trace.classes().iter().map(|tb| tb.iters.max(0.0) as u64 + 1).collect();
    let class_timing: Vec<ClassTiming> = dtc_par::par_map_collect_weighted(&class_weights, |c| {
        let tb = &trace.classes()[c];
        let stall =
            pipeline::tb_stall_cycles(device, eff_occ, trace.warps_per_tb, tb, effective_hit);
        let duration = match options.timing {
            // `pipe + stall` is the exact association of the combined
            // analytical formula (pinned by a pipeline test), so computing
            // the stall once serves both the duration and the counter.
            TimingMode::Analytical => {
                pipeline::tb_pipe_cycles(device, eff_occ, trace.warps_per_tb, tb) + stall
            }
            TimingMode::EventDriven => exec::tb_duration_event_driven(
                device,
                eff_occ,
                trace.warps_per_tb,
                tb,
                effective_hit,
            ),
        };
        let tc_busy = tb.hmma_ops / device.tc_hmma_per_cycle;
        ClassTiming { duration, stall, tc_busy }
    });

    // Expand per-class durations to launch order for the scheduler.
    let durations: Vec<f64> =
        trace.class_ids().iter().map(|&c| class_timing[c as usize].duration).collect();

    // Schedule onto SMs.
    let outcome = schedule(device, eff_occ, &durations);

    // Instruction/transaction accounting — kept as first-class counters
    // (Table 2's mixes, Fig 13's sectors) instead of discarded. Blocks are
    // walked in launch order: f64 accumulation order is part of the pinned
    // bit-identical contract, and the per-class cached stall and TC-busy
    // values make each step a lookup.
    let mut tc_busy = 0.0f64;
    let mut instructions = InstructionMix::default();
    let mut b_sectors = 0.0f64;
    let mut other_sectors = 0.0f64;
    let mut stall_cycles = 0.0f64;
    for &c in trace.class_ids() {
        let timing = &class_timing[c as usize];
        let tb = &trace.classes()[c as usize];
        tc_busy += timing.tc_busy;
        instructions.hmma += tb.hmma_count;
        instructions.imad += tb.imad_count;
        instructions.ffma += tb.fp_ops;
        instructions.sts += tb.smem_ops;
        instructions.shfl += tb.shfl_ops;
        instructions.atom += tb.atom_ops;
        if tb.overlap_a_fetch {
            instructions.cp_async_sectors += tb.lsu_a_sectors;
        } else {
            instructions.ldg_sectors += tb.lsu_a_sectors;
        }
        instructions.ldg_sectors += tb.lsu_b_sectors;
        instructions.stg_sectors += tb.epilogue_sectors;
        b_sectors += tb.lsu_b_sectors;
        other_sectors += tb.lsu_a_sectors + tb.epilogue_sectors;
        stall_cycles += timing.stall;
    }
    let imad_count = instructions.imad;
    let hmma_count = instructions.hmma;

    // Pipeline-utilization accounting: a TB keeps the SM's TC pipe busy for
    // hmma_ops / tc_throughput cycles regardless of slot sharing.
    let total_sm_cycles = device.num_sms as f64 * outcome.makespan_cycles.max(1e-9);
    let tc_utilization = (tc_busy / total_sm_cycles).min(1.0);

    // DRAM traffic: all sparse-A and C traffic is streaming (miss), B
    // traffic is filtered by the L2 hit rate.
    let l2_sector_hits = b_sectors * effective_hit;
    let l2_sector_misses = b_sectors * (1.0 - effective_hit) + other_sectors;
    let dram_bytes = l2_sector_misses * device.sector_bytes as f64;

    // Global DRAM-bandwidth lower bound on the kernel time.
    let dram_cycles = dram_bytes / device.dram_bytes_per_cycle();
    let cycles = outcome.makespan_cycles.max(dram_cycles);
    // When DRAM is the binding constraint, utilization shrinks accordingly.
    let tc_utilization = tc_utilization * (outcome.makespan_cycles / cycles.max(1e-9)).min(1.0);

    // Per-SM block counts and achieved occupancy over the kernel duration.
    let mut sm_blocks = vec![0usize; device.num_sms];
    for &sm in &outcome.block_sm {
        sm_blocks[sm] += 1;
    }
    let sm_occupancy: Vec<f64> =
        outcome.sm_busy_cycles.iter().map(|&b| b / cycles.max(1e-9)).collect();

    let counters = CounterSet {
        sm_cycles: outcome.sm_busy_cycles,
        sm_blocks,
        sm_occupancy,
        effective_occupancy: eff_occ,
        instructions,
        l2_sector_hits,
        l2_sector_misses,
        dram_bytes,
        stall_cycles,
    };

    sim_telemetry(trace, &counters);

    SimReport {
        cycles,
        time_ms: cycles / (device.sm_clock_ghz * 1e6),
        sm_finish_cycles: outcome.sm_finish_cycles,
        tc_utilization,
        imad_count,
        hmma_count,
        imad_per_hmma: if hmma_count > 0.0 { imad_count / hmma_count } else { f64::INFINITY },
        dram_bytes,
        l2_hit_rate,
        num_tbs: trace.num_tbs(),
        counters,
    }
}

/// Bumps the process-wide registry with launch-level aggregates (cheap:
/// relaxed atomic writes through cached handles).
fn sim_telemetry(trace: &KernelTrace, counters: &CounterSet) {
    use std::sync::OnceLock;
    static CALLS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static TBS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static BLOCKS: OnceLock<&'static dtc_telemetry::Gauge> = OnceLock::new();
    static CLASSES: OnceLock<&'static dtc_telemetry::Gauge> = OnceLock::new();
    static BYTES: OnceLock<&'static dtc_telemetry::Gauge> = OnceLock::new();
    CALLS.get_or_init(|| dtc_telemetry::counter("sim.simulate.calls")).incr();
    TBS.get_or_init(|| dtc_telemetry::counter("sim.simulate.tbs"))
        .add(counters.total_blocks() as u64);
    // Last-trace compression shape: blocks vs interned classes vs bytes held.
    BLOCKS.get_or_init(|| dtc_telemetry::gauge("sim.trace.blocks")).set(trace.num_tbs() as f64);
    CLASSES
        .get_or_init(|| dtc_telemetry::gauge("sim.trace.classes"))
        .set(trace.num_classes() as f64);
    BYTES.get_or_init(|| dtc_telemetry::gauge("sim.trace.bytes")).set(trace.memory_bytes() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(hmma: f64) -> TbWork {
        TbWork { hmma_ops: hmma, hmma_count: hmma * 2.0, ..TbWork::default() }
    }

    #[test]
    fn empty_trace_reports_zero_time() {
        let report = simulate(&Device::rtx4090(), &KernelTrace::new(6, 8), &SimOptions::default());
        assert_eq!(report.num_tbs, 0);
        assert!(report.time_ms < 1e-6);
    }

    #[test]
    fn more_work_takes_longer() {
        let device = Device::rtx4090();
        let mut small = KernelTrace::new(6, 8);
        let mut large = KernelTrace::new(6, 8);
        for _ in 0..256 {
            small.push(tb(100.0));
            large.push(tb(1000.0));
        }
        let rs = simulate(&device, &small, &SimOptions::default());
        let rl = simulate(&device, &large, &SimOptions::default());
        assert!(rl.time_ms > rs.time_ms * 2.0);
    }

    #[test]
    fn utilization_bounded() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        for _ in 0..10_000 {
            trace.push(tb(10_000.0));
        }
        let r = simulate(&device, &trace, &SimOptions::default());
        assert!(r.tc_utilization > 0.5 && r.tc_utilization <= 1.0, "{}", r.tc_utilization);
    }

    #[test]
    fn imbalanced_trace_has_idle_sms() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        // One giant TB and many tiny ones: makespan dominated by the giant.
        trace.push(tb(1e7));
        for _ in 0..127 {
            trace.push(tb(1.0));
        }
        let r = simulate(&device, &trace, &SimOptions::default());
        let max = r.sm_busy_cycles().iter().cloned().fold(0.0, f64::max);
        let min = r.sm_busy_cycles().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min * 100.0);
    }

    #[test]
    fn dram_bound_kernel_capped_by_bandwidth() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.assumed_l2_hit_rate = 0.0;
        // Tiny compute, huge memory traffic.
        trace.push(TbWork { lsu_b_sectors: 1e9, ..TbWork::default() });
        let r = simulate(&device, &trace, &SimOptions::default());
        let expect_ms = 1e9 * 32.0 / (device.dram_bw_gbps * 1e9) * 1e3;
        assert!(r.time_ms >= expect_ms * 0.99, "{} vs {}", r.time_ms, expect_ms);
    }

    #[test]
    fn interned_trace_matches_legacy_bit_for_bit() {
        // The headline contract: duplicate-heavy compressed traces report
        // exactly what the one-class-per-block representation reports.
        let device = Device::rtx4090();
        let mut interned = KernelTrace::new(6, 8);
        let mut legacy = KernelTrace::new(6, 8);
        legacy.set_interning(false);
        for i in 0..500usize {
            let w = TbWork {
                hmma_ops: (i % 7) as f64 * 10.0,
                hmma_count: (i % 7) as f64 * 20.0,
                lsu_b_sectors: (i % 3) as f64 * 64.0,
                iters: 4.0,
                ..TbWork::default()
            };
            interned.push(w.clone());
            legacy.push(w);
        }
        assert!(interned.num_classes() < 25);
        assert_eq!(legacy.num_classes(), 500);
        for timing in [TimingMode::Analytical, TimingMode::EventDriven] {
            let opts = SimOptions { simulate_l2: false, timing };
            let a = simulate(&device, &interned, &opts);
            let b = simulate(&device, &legacy, &opts);
            assert_eq!(a, b, "timing={timing:?}");
        }
    }
}
