//! Analytical GPU simulator substrate for the DTC-SpMM reproduction.
//!
//! The paper's performance claims are stated in micro-architectural terms:
//! instruction mixes (`#IMAD/#HMMA`, Table 2), Tensor-Core pipeline
//! utilization (Table 2, Fig 14), per-SM busy/idle timelines under the
//! thread-block scheduling policy of eq. (1) (Fig 3, Fig 15), L2 hit rates
//! (Fig 13c), and memory traffic. This crate models exactly those
//! quantities:
//!
//! - [`Device`] — an SM-array model with per-pipe throughputs and latencies
//!   (presets: [`Device::rtx4090`], [`Device::rtx3090`]);
//! - [`KernelTrace`] / [`TbWork`] — a kernel is lowered to per-thread-block
//!   instruction and memory work, produced by the kernel crates;
//! - [`simulate`] — schedules thread blocks onto SMs with the paper's
//!   policy model, combines per-pipe work into per-TB durations, and
//!   produces a [`SimReport`] with makespan, per-SM timelines, pipeline
//!   utilization and instruction counts;
//! - [`cache::L2Cache`] — a sectored, set-associative LRU model for the
//!   L2 hit-rate experiments.
//!
//! # Example
//!
//! ```
//! use dtc_sim::{simulate, Device, KernelTrace, SimOptions, TbWork};
//!
//! let device = Device::rtx4090();
//! let mut trace = KernelTrace::new(6, 8);
//! trace.push(TbWork { hmma_ops: 100.0, hmma_count: 200.0, ..TbWork::default() });
//! let report = simulate(&device, &trace, &SimOptions::default());
//! assert!(report.time_ms > 0.0);
//! assert!(report.tc_utilization > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
mod counters;
mod device;
mod exec;
pub mod isa;
mod kernel;
pub mod occupancy;
mod pipeline;
mod report;
pub mod roofline;
mod scheduler;

pub use counters::{CounterSet, InstructionMix};
pub use device::Device;
pub use exec::tb_duration_event_driven;
pub use kernel::{KernelTrace, TbWork};
pub use pipeline::{tb_duration_cycles, tb_duration_cycles_with_occ, tb_stall_cycles};
pub use report::SimReport;
pub use scheduler::{schedule, sm_for_block, ScheduleOutcome};

/// How per-thread-block durations are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Closed-form pipe model (fast; the default).
    #[default]
    Analytical,
    /// Iteration-by-iteration replay of the kernel main loop
    /// ([`tb_duration_event_driven`]) — slower, finer latency treatment.
    EventDriven,
}

/// Options controlling a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Simulate the L2 cache over the trace's recorded B-access streams.
    /// Costs time proportional to the number of recorded sector accesses;
    /// when off, [`SimReport::l2_hit_rate`] is `None` and DRAM traffic
    /// assumes the trace's `assumed_l2_hit_rate`.
    pub simulate_l2: bool,
    /// Timing-model choice for per-block durations.
    pub timing: TimingMode,
}

/// Runs a kernel trace on a device model and returns the performance report.
///
/// This is the single entry point every kernel implementation uses: lower
/// the kernel to a [`KernelTrace`], then call `simulate`.
pub fn simulate(device: &Device, trace: &KernelTrace, options: &SimOptions) -> SimReport {
    // Optional L2 simulation over the recorded access streams.
    let l2_hit_rate =
        if options.simulate_l2 { Some(cache::simulate_l2_over_trace(device, trace)) } else { None };
    let effective_hit = l2_hit_rate.unwrap_or(trace.assumed_l2_hit_rate);

    // Effective occupancy: a launch with fewer blocks than SM slots leaves
    // each resident block a larger share of its SM.
    let eff_occ =
        trace.occupancy.max(1).min(trace.tbs.len().div_ceil(device.num_sms.max(1)).max(1));

    // Per-TB durations, fanned out over host threads. Each TB's duration is
    // a pure function of its own work, and `par_map_collect` returns them in
    // TB order, so the schedule below sees exactly the serial sequence.
    let durations: Vec<f64> = dtc_par::par_map_collect(trace.tbs.len(), |i| {
        let tb = &trace.tbs[i];
        match options.timing {
            TimingMode::Analytical => pipeline::tb_duration_cycles_with_occ(
                device,
                eff_occ,
                trace.warps_per_tb,
                tb,
                effective_hit,
            ),
            TimingMode::EventDriven => exec::tb_duration_event_driven(
                device,
                eff_occ,
                trace.warps_per_tb,
                tb,
                effective_hit,
            ),
        }
    });

    // Schedule onto SMs.
    let outcome = schedule(device, eff_occ, &durations);

    // Pipeline-utilization accounting: a TB keeps the SM's TC pipe busy for
    // hmma_ops / tc_throughput cycles regardless of slot sharing.
    let tc_busy: f64 = trace.tbs.iter().map(|tb| tb.hmma_ops / device.tc_hmma_per_cycle).sum();
    let total_sm_cycles = device.num_sms as f64 * outcome.makespan_cycles.max(1e-9);
    let tc_utilization = (tc_busy / total_sm_cycles).min(1.0);

    // Per-class instruction/transaction accounting — kept as first-class
    // counters (Table 2's mixes, Fig 13's sectors) instead of discarded.
    let mut instructions = InstructionMix::default();
    let mut b_sectors = 0.0f64;
    let mut other_sectors = 0.0f64;
    let mut stall_cycles = 0.0f64;
    for tb in &trace.tbs {
        instructions.hmma += tb.hmma_count;
        instructions.imad += tb.imad_count;
        instructions.ffma += tb.fp_ops;
        instructions.sts += tb.smem_ops;
        instructions.shfl += tb.shfl_ops;
        instructions.atom += tb.atom_ops;
        if tb.overlap_a_fetch {
            instructions.cp_async_sectors += tb.lsu_a_sectors;
        } else {
            instructions.ldg_sectors += tb.lsu_a_sectors;
        }
        instructions.ldg_sectors += tb.lsu_b_sectors;
        instructions.stg_sectors += tb.epilogue_sectors;
        b_sectors += tb.lsu_b_sectors;
        other_sectors += tb.lsu_a_sectors + tb.epilogue_sectors;
        stall_cycles +=
            pipeline::tb_stall_cycles(device, eff_occ, trace.warps_per_tb, tb, effective_hit);
    }
    let imad_count = instructions.imad;
    let hmma_count = instructions.hmma;

    // DRAM traffic: all sparse-A and C traffic is streaming (miss), B
    // traffic is filtered by the L2 hit rate.
    let l2_sector_hits = b_sectors * effective_hit;
    let l2_sector_misses = b_sectors * (1.0 - effective_hit) + other_sectors;
    let dram_bytes = l2_sector_misses * device.sector_bytes as f64;

    // Global DRAM-bandwidth lower bound on the kernel time.
    let dram_cycles = dram_bytes / device.dram_bytes_per_cycle();
    let cycles = outcome.makespan_cycles.max(dram_cycles);
    // When DRAM is the binding constraint, utilization shrinks accordingly.
    let tc_utilization = tc_utilization * (outcome.makespan_cycles / cycles.max(1e-9)).min(1.0);

    // Per-SM block counts and achieved occupancy over the kernel duration.
    let mut sm_blocks = vec![0usize; device.num_sms];
    for &sm in &outcome.block_sm {
        sm_blocks[sm] += 1;
    }
    let sm_occupancy: Vec<f64> =
        outcome.sm_busy_cycles.iter().map(|&b| b / cycles.max(1e-9)).collect();

    let counters = CounterSet {
        sm_cycles: outcome.sm_busy_cycles.clone(),
        sm_blocks,
        sm_occupancy,
        effective_occupancy: eff_occ,
        instructions,
        l2_sector_hits,
        l2_sector_misses,
        dram_bytes,
        stall_cycles,
    };

    sim_telemetry(&counters);

    SimReport {
        cycles,
        time_ms: cycles / (device.sm_clock_ghz * 1e6),
        sm_busy_cycles: outcome.sm_busy_cycles,
        sm_finish_cycles: outcome.sm_finish_cycles,
        tc_utilization,
        imad_count,
        hmma_count,
        imad_per_hmma: if hmma_count > 0.0 { imad_count / hmma_count } else { f64::INFINITY },
        dram_bytes,
        l2_hit_rate,
        num_tbs: trace.tbs.len(),
        counters,
    }
}

/// Bumps the process-wide registry with launch-level aggregates (cheap:
/// two relaxed atomic adds through cached handles).
fn sim_telemetry(counters: &CounterSet) {
    use std::sync::OnceLock;
    static CALLS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static TBS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    CALLS.get_or_init(|| dtc_telemetry::counter("sim.simulate.calls")).incr();
    TBS.get_or_init(|| dtc_telemetry::counter("sim.simulate.tbs"))
        .add(counters.total_blocks() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(hmma: f64) -> TbWork {
        TbWork { hmma_ops: hmma, hmma_count: hmma * 2.0, ..TbWork::default() }
    }

    #[test]
    fn empty_trace_reports_zero_time() {
        let report = simulate(&Device::rtx4090(), &KernelTrace::new(6, 8), &SimOptions::default());
        assert_eq!(report.num_tbs, 0);
        assert!(report.time_ms < 1e-6);
    }

    #[test]
    fn more_work_takes_longer() {
        let device = Device::rtx4090();
        let mut small = KernelTrace::new(6, 8);
        let mut large = KernelTrace::new(6, 8);
        for _ in 0..256 {
            small.push(tb(100.0));
            large.push(tb(1000.0));
        }
        let rs = simulate(&device, &small, &SimOptions::default());
        let rl = simulate(&device, &large, &SimOptions::default());
        assert!(rl.time_ms > rs.time_ms * 2.0);
    }

    #[test]
    fn utilization_bounded() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        for _ in 0..10_000 {
            trace.push(tb(10_000.0));
        }
        let r = simulate(&device, &trace, &SimOptions::default());
        assert!(r.tc_utilization > 0.5 && r.tc_utilization <= 1.0, "{}", r.tc_utilization);
    }

    #[test]
    fn imbalanced_trace_has_idle_sms() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(1, 8);
        // One giant TB and many tiny ones: makespan dominated by the giant.
        trace.push(tb(1e7));
        for _ in 0..127 {
            trace.push(tb(1.0));
        }
        let r = simulate(&device, &trace, &SimOptions::default());
        let max = r.sm_busy_cycles.iter().cloned().fold(0.0, f64::max);
        let min = r.sm_busy_cycles.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min * 100.0);
    }

    #[test]
    fn dram_bound_kernel_capped_by_bandwidth() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.assumed_l2_hit_rate = 0.0;
        // Tiny compute, huge memory traffic.
        trace.push(TbWork { lsu_b_sectors: 1e9, ..TbWork::default() });
        let r = simulate(&device, &trace, &SimOptions::default());
        let expect_ms = 1e9 * 32.0 / (device.dram_bw_gbps * 1e9) * 1e3;
        assert!(r.time_ms >= expect_ms * 0.99, "{} vs {}", r.time_ms, expect_ms);
    }
}
