//! Occupancy calculation: how many thread blocks fit on one SM given the
//! kernel's resource usage.
//!
//! The paper's Selector hinges on the measured occupancy of the DTC-SpMM
//! kernel ("The occupancy of the DTC-SpMM kernel on RTX4090 is 6, meaning
//! that one SM can run 6 thread blocks concurrently", §4.5.2). This module
//! reproduces the CUDA occupancy rules — register, shared-memory, warp and
//! block limits — so kernel configurations can derive their occupancy
//! instead of hard-coding it.

use crate::Device;

/// Per-SM resource limits (Ampere/Ada values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmResources {
    /// 32-bit registers per SM.
    pub registers: u32,
    /// Shared memory bytes per SM available to kernels.
    pub shared_memory: u32,
    /// Maximum resident warps per SM.
    pub max_warps: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks: u32,
    /// Register allocation granularity (per warp).
    pub register_granularity: u32,
    /// Shared-memory allocation granularity (bytes).
    pub smem_granularity: u32,
}

impl SmResources {
    /// Ada Lovelace (RTX4090) per-SM limits.
    pub fn ada() -> Self {
        SmResources {
            registers: 65_536,
            shared_memory: 100 * 1024,
            max_warps: 48,
            max_blocks: 24,
            register_granularity: 256,
            smem_granularity: 128,
        }
    }

    /// Ampere (RTX3090) per-SM limits.
    pub fn ampere() -> Self {
        SmResources {
            registers: 65_536,
            shared_memory: 100 * 1024,
            max_warps: 48,
            max_blocks: 16,
            register_granularity: 256,
            smem_granularity: 128,
        }
    }

    /// The per-SM limits matching a [`Device`] preset: the RTX3090 model
    /// gets the Ampere limits, everything else the Ada limits (the paper's
    /// primary GPU). Static analysis uses this to pair a cost-model device
    /// with the occupancy rules of eq. 6.
    pub fn for_device(device: &Device) -> Self {
        if device.name.contains("3090") {
            SmResources::ampere()
        } else {
            SmResources::ada()
        }
    }
}

/// Resource usage of one kernel's thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Warps per thread block.
    pub warps_per_block: u32,
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_memory_per_block: u32,
}

impl KernelResources {
    /// The DTC-SpMM runtime kernel configuration: 8 warps, moderate
    /// register pressure from the `mma` fragments and remapping, and two
    /// sparse-A double buffers in shared memory — yielding occupancy 6 on
    /// the Ada limits, as the paper measures.
    pub fn dtc_spmm() -> Self {
        KernelResources {
            warps_per_block: 8,
            registers_per_thread: 40,
            shared_memory_per_block: 12 * 1024,
        }
    }

    /// TCGNN-SpMM: WMMA staging buffers for B tiles push shared memory
    /// high enough to cap occupancy at ~4.
    pub fn tcgnn_spmm() -> Self {
        KernelResources {
            warps_per_block: 8,
            registers_per_thread: 48,
            shared_memory_per_block: 24 * 1024,
        }
    }
}

fn round_up(value: u32, granularity: u32) -> u32 {
    value.div_ceil(granularity.max(1)) * granularity.max(1)
}

/// Computes the occupancy (resident thread blocks per SM) of a kernel.
///
/// Returns 0 when a single block cannot fit at all.
pub fn occupancy(sm: &SmResources, kernel: &KernelResources) -> u32 {
    let warps = kernel.warps_per_block.max(1);
    // Warp limit.
    let by_warps = sm.max_warps / warps;
    // Register limit: registers allocate per warp at a granularity.
    let regs_per_warp = round_up(kernel.registers_per_thread * 32, sm.register_granularity);
    let by_regs = sm
        .registers
        .checked_div(regs_per_warp)
        .map_or(sm.max_blocks, |warp_budget| warp_budget / warps);
    // Shared-memory limit.
    let smem = round_up(kernel.shared_memory_per_block, sm.smem_granularity);
    let by_smem = sm.shared_memory.checked_div(smem).unwrap_or(sm.max_blocks);
    by_warps.min(by_regs).min(by_smem).min(sm.max_blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtc_kernel_occupancy_is_six_on_ada() {
        // §4.5.2: "The occupancy of the DTC-SpMM kernel on RTX4090 is 6".
        assert_eq!(occupancy(&SmResources::ada(), &KernelResources::dtc_spmm()), 6);
    }

    #[test]
    fn tcgnn_occupancy_is_lower() {
        let tcgnn = occupancy(&SmResources::ada(), &KernelResources::tcgnn_spmm());
        let dtc = occupancy(&SmResources::ada(), &KernelResources::dtc_spmm());
        assert!(tcgnn < dtc, "tcgnn={tcgnn} dtc={dtc}");
        assert_eq!(tcgnn, 4);
    }

    #[test]
    fn warp_limit_binds_for_tiny_kernels() {
        let k = KernelResources {
            warps_per_block: 2,
            registers_per_thread: 16,
            shared_memory_per_block: 0,
        };
        // 48 warps / 2 = 24, capped by max_blocks = 24.
        assert_eq!(occupancy(&SmResources::ada(), &k), 24);
    }

    #[test]
    fn register_limit_binds_for_fat_kernels() {
        let k = KernelResources {
            warps_per_block: 4,
            registers_per_thread: 255,
            shared_memory_per_block: 0,
        };
        // 255*32 -> 8192 regs/warp; 65536/8192 = 8 warps -> 2 blocks.
        assert_eq!(occupancy(&SmResources::ada(), &k), 2);
    }

    #[test]
    fn smem_limit_binds_for_buffer_heavy_kernels() {
        let k = KernelResources {
            warps_per_block: 4,
            registers_per_thread: 32,
            shared_memory_per_block: 48 * 1024,
        };
        assert_eq!(occupancy(&SmResources::ada(), &k), 2);
    }

    #[test]
    fn oversized_block_yields_zero() {
        let k = KernelResources {
            warps_per_block: 64,
            registers_per_thread: 32,
            shared_memory_per_block: 0,
        };
        assert_eq!(occupancy(&SmResources::ada(), &k), 0);
    }

    #[test]
    fn ampere_caps_blocks_lower() {
        assert!(SmResources::ampere().max_blocks < SmResources::ada().max_blocks);
    }
}
