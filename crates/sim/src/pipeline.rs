//! The per-thread-block timing model.
//!
//! A thread block's duration combines issue-throughput terms per pipe
//! (scaled by the occupancy share of the SM), dependency stalls for
//! non-prefetched loads, and the overlap structure of §4.4: with sparse
//! double buffering the sparse-A fetch hides under Tensor-Core compute
//! (`max(tc, lsu_a)`); without it the two serialize (`tc + lsu_a`).

use crate::{Device, KernelTrace, TbWork};

/// Computes the duration of one thread block in SM-clock cycles.
///
/// `l2_hit_rate` discounts the latency-facing portion of B traffic (hits
/// are served ~8x faster than DRAM round trips).
pub fn tb_duration_cycles(
    device: &Device,
    trace: &KernelTrace,
    tb: &TbWork,
    l2_hit_rate: f64,
) -> f64 {
    tb_duration_cycles_with_occ(device, trace.occupancy, trace.warps_per_tb, tb, l2_hit_rate)
}

/// [`tb_duration_cycles`] with an explicit *effective* occupancy — the
/// number of thread blocks actually sharing the SM. A kernel that launches
/// fewer blocks than SM slots leaves each resident block the whole SM.
pub fn tb_duration_cycles_with_occ(
    device: &Device,
    occupancy: usize,
    warps_per_tb: usize,
    tb: &TbWork,
    l2_hit_rate: f64,
) -> f64 {
    tb_pipe_cycles(device, occupancy, warps_per_tb, tb)
        + tb_stall_cycles(device, occupancy, warps_per_tb, tb, l2_hit_rate)
}

/// The issue-throughput portion of [`tb_duration_cycles_with_occ`]: launch
/// overhead plus per-pipe issue time, *without* the dependency-stall term.
/// The simulator computes stalls once per duration class and adds them back
/// (`duration = pipe + stall`, the exact association of the combined
/// formula), so both values fall out of one pass.
pub fn tb_pipe_cycles(device: &Device, occupancy: usize, warps_per_tb: usize, tb: &TbWork) -> f64 {
    debug_assert!(
        occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let occ = occupancy as f64;
    // Issue capability: an SM needs ~16 resident warps to saturate its
    // pipes; a lone thread block of `warps_per_tb` warps cannot. The cap
    // inflates per-TB pipe times when residency is that low.
    let issue_cap = ((occ * warps_per_tb.max(1) as f64) / 16.0).min(1.0);
    // Each resident TB receives 1/occupancy of every per-SM pipe.
    let alu_t = tb.alu_ops / (device.alu_ops_per_cycle / occ);
    let fp_t = tb.fp_ops / (device.fp32_ops_per_cycle / occ);
    let smem_t = tb.smem_ops / (device.smem_ops_per_cycle / occ);
    let shfl_t = tb.shfl_ops / (device.shfl_ops_per_cycle / occ);
    let lsu_a_t = tb.lsu_a_sectors / (device.lsu_sectors_per_cycle / occ);
    let lsu_b_t = tb.lsu_b_sectors / (device.lsu_sectors_per_cycle / occ);
    let tc_t = tb.hmma_ops / (device.tc_hmma_per_cycle / occ);
    let epi_t = tb.epilogue_sectors / (device.lsu_sectors_per_cycle / occ)
        + tb.atom_ops * device.atomic_cost_cycles;

    // Overlap structure: double buffering hides the A fetch under TC compute.
    let a_and_tc = if tb.overlap_a_fetch { tc_t.max(lsu_a_t) } else { tc_t + lsu_a_t };

    device.tb_launch_overhead_cycles / occ
        + (alu_t + fp_t + smem_t + shfl_t + lsu_b_t + a_and_tc + epi_t) / issue_cap
}

/// The dependency-stall term of [`tb_duration_cycles_with_occ`]: cycles one
/// thread block spends waiting on memory latency. Every loop iteration
/// waits on the B load (never prefetched — no async global-to-register copy
/// exists, §4.4.2) and, without double buffering, also on the A load;
/// warp-level parallelism within the SM hides most of the latency. Exposed
/// separately so the simulator can export it as a pipeline-stall counter.
pub fn tb_stall_cycles(
    device: &Device,
    occupancy: usize,
    warps_per_tb: usize,
    tb: &TbWork,
    l2_hit_rate: f64,
) -> f64 {
    debug_assert!(
        occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let occ = occupancy as f64;
    let hide = (occ * warps_per_tb.max(1) as f64 / 2.0).max(1.0);
    let eff_latency = device.mem_latency_cycles * (1.0 - l2_hit_rate)
        + device.mem_latency_cycles / 8.0 * l2_hit_rate;
    let stall_b = if tb.lsu_b_sectors > 0.0 { tb.iters * eff_latency / hide } else { 0.0 };
    let stall_a = if tb.overlap_a_fetch || tb.lsu_a_sectors == 0.0 {
        0.0
    } else {
        tb.iters * eff_latency / hide
    };
    stall_a + stall_b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_tb() -> TbWork {
        TbWork {
            alu_ops: 100.0,
            lsu_a_sectors: 200.0,
            lsu_b_sectors: 400.0,
            hmma_ops: 300.0,
            iters: 50.0,
            ..TbWork::default()
        }
    }

    #[test]
    fn double_buffering_is_faster() {
        let device = Device::rtx4090();
        let trace = KernelTrace::new(6, 8);
        let plain = tb_duration_cycles(&device, &trace, &base_tb(), 0.5);
        let mut overlapped = base_tb();
        overlapped.overlap_a_fetch = true;
        let dbuf = tb_duration_cycles(&device, &trace, &overlapped, 0.5);
        assert!(dbuf < plain, "dbuf={dbuf} plain={plain}");
    }

    #[test]
    fn l2_hits_reduce_stalls() {
        let device = Device::rtx4090();
        let trace = KernelTrace::new(6, 8);
        let cold = tb_duration_cycles(&device, &trace, &base_tb(), 0.0);
        let warm = tb_duration_cycles(&device, &trace, &base_tb(), 0.9);
        assert!(warm < cold);
    }

    #[test]
    fn more_alu_means_longer() {
        let device = Device::rtx4090();
        let trace = KernelTrace::new(6, 8);
        let mut heavy = base_tb();
        heavy.alu_ops *= 20.0;
        assert!(
            tb_duration_cycles(&device, &trace, &heavy, 0.5)
                > tb_duration_cycles(&device, &trace, &base_tb(), 0.5)
        );
    }

    #[test]
    fn higher_occupancy_slows_single_tb() {
        // A single TB sharing its SM with more residents gets less pipe.
        let device = Device::rtx4090();
        let t1 = KernelTrace::new(1, 8);
        let t6 = KernelTrace::new(6, 8);
        assert!(
            tb_duration_cycles(&device, &t6, &base_tb(), 0.5)
                > tb_duration_cycles(&device, &t1, &base_tb(), 0.5)
        );
    }

    #[test]
    fn duration_decomposes_exactly_into_pipe_plus_stall() {
        // The class-interned simulate() path recombines the two terms; the
        // split must be bit-exact, not merely close.
        let device = Device::rtx4090();
        for hit in [0.0, 0.3, 0.9] {
            for occ in [1usize, 2, 6] {
                let d = tb_duration_cycles_with_occ(&device, occ, 8, &base_tb(), hit);
                let pipe = tb_pipe_cycles(&device, occ, 8, &base_tb());
                let stall = tb_stall_cycles(&device, occ, 8, &base_tb(), hit);
                assert_eq!(d.to_bits(), (pipe + stall).to_bits());
            }
        }
    }

    #[test]
    fn empty_tb_costs_only_launch_overhead() {
        let device = Device::rtx4090();
        let trace = KernelTrace::new(1, 8);
        let d = tb_duration_cycles(&device, &trace, &TbWork::default(), 0.5);
        assert_eq!(d, device.tb_launch_overhead_cycles);
    }

    #[test]
    fn lone_small_tb_cannot_saturate_the_sm() {
        // 8 warps alone on an SM: pipe terms inflate by 16/8 = 2x compared
        // to a fully resident SM (2 TBs of 8 warps, each at half share).
        let device = Device::rtx4090();
        let lone = tb_duration_cycles_with_occ(&device, 1, 8, &base_tb(), 0.5);
        let full = tb_duration_cycles_with_occ(&device, 2, 8, &base_tb(), 0.5);
        // `full` halves the pipes (x2) without the issue-cap inflation, so
        // the two should be close; lone must NOT be 2x faster.
        assert!(lone > full * 0.8, "lone={lone} full={full}");
    }
}
