use crate::counters::CounterSet;

/// The result of simulating one kernel launch — the counters NVIDIA Nsight
/// Compute would report on real hardware.
///
/// `PartialEq` compares every field (including the full [`CounterSet`]),
/// which the equivalence tests use to pin compressed-trace simulation
/// bit-identical to the legacy per-block model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Kernel duration in SM-clock cycles (after the DRAM-bandwidth bound).
    pub cycles: f64,
    /// Kernel duration in milliseconds.
    pub time_ms: f64,
    /// Per-SM finish time of the last block.
    pub sm_finish_cycles: Vec<f64>,
    /// Tensor-Core pipeline utilization in `[0, 1]` (Table 2, Fig 14).
    pub tc_utilization: f64,
    /// Total executed IMAD instructions.
    pub imad_count: f64,
    /// Total executed HMMA instructions.
    pub hmma_count: f64,
    /// The `#IMAD/#HMMA` ratio (`inf` when no HMMA executed).
    pub imad_per_hmma: f64,
    /// DRAM traffic in bytes (after L2 filtering).
    pub dram_bytes: f64,
    /// Simulated L2 hit rate, when the cache simulation was enabled.
    pub l2_hit_rate: Option<f64>,
    /// Number of thread blocks launched.
    pub num_tbs: usize,
    /// The full micro-architectural counter export: per-SM cycles and
    /// occupancy, per-class instruction counts, L2 sectors, DRAM bytes and
    /// stall cycles. Consistent with the aggregate fields above (e.g.
    /// `counters.instructions.hmma == hmma_count`).
    pub counters: CounterSet,
}

impl SimReport {
    /// Achieved throughput for a kernel performing `flops` floating-point
    /// operations, in GFLOPS.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.time_ms <= 0.0 {
            0.0
        } else {
            flops as f64 / (self.time_ms * 1e-3) / 1e9
        }
    }

    /// Per-SM busy cycles (sum of durations of blocks run on each SM) —
    /// the Fig 3 / Fig 15(b) data. Stored once, in
    /// [`CounterSet::sm_cycles`]; this accessor keeps the familiar name.
    pub fn sm_busy_cycles(&self) -> &[f64] {
        &self.counters.sm_cycles
    }

    /// Per-SM relative busy fraction (busy / makespan), the quantity plotted
    /// in Fig 3 and Fig 15(b). Empty if the kernel launched no blocks.
    pub fn sm_busy_fractions(&self) -> Vec<f64> {
        let makespan = self.cycles.max(1e-9);
        self.sm_busy_cycles().iter().map(|&b| (b / makespan).min(1.0)).collect()
    }

    /// Fraction of SMs idle more than half the kernel duration — a scalar
    /// imbalance indicator.
    pub fn mostly_idle_sm_fraction(&self) -> f64 {
        let fr = self.sm_busy_fractions();
        if fr.is_empty() {
            return 0.0;
        }
        fr.iter().filter(|&&f| f < 0.5).count() as f64 / fr.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: f64, busy: Vec<f64>) -> SimReport {
        SimReport {
            cycles,
            time_ms: cycles / 2.52e6,
            sm_finish_cycles: busy.clone(),
            tc_utilization: 0.1,
            imad_count: 10.0,
            hmma_count: 5.0,
            imad_per_hmma: 2.0,
            dram_bytes: 0.0,
            l2_hit_rate: None,
            num_tbs: 1,
            counters: CounterSet { sm_cycles: busy, ..CounterSet::default() },
        }
    }

    #[test]
    fn gflops_math() {
        let r = report(2.52e6, vec![1.0]); // exactly 1 ms
        assert!((r.gflops(2_000_000_000) - 2000.0).abs() < 1.0);
    }

    #[test]
    fn busy_fractions_capped() {
        let r = report(100.0, vec![50.0, 100.0, 150.0]);
        let fr = r.sm_busy_fractions();
        assert_eq!(fr.len(), 3);
        assert!((fr[0] - 0.5).abs() < 1e-12);
        assert_eq!(fr[2], 1.0);
    }

    #[test]
    fn idle_fraction() {
        let r = report(100.0, vec![10.0, 90.0, 20.0, 80.0]);
        assert!((r.mostly_idle_sm_fraction() - 0.5).abs() < 1e-12);
    }
}
