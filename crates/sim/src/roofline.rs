//! Roofline analysis.
//!
//! Observation 1 frames format choice through the roofline model: "As a
//! memory-bound kernel, the theoretical performance upper-bound of SpMM is
//! mostly determined by memory access efficiency ... storage formats with
//! lower memory complexity imply higher computational density and higher
//! roofline performance upper-bound." This module computes those bounds
//! from a device model and a kernel's traffic.

use crate::{Device, KernelTrace};

/// A kernel's position on the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity: useful FLOP per DRAM byte.
    pub intensity: f64,
    /// The roofline bound at that intensity, GFLOPS.
    pub bound_gflops: f64,
    /// Whether the bound is the memory slope (true) or the compute roof.
    pub memory_bound: bool,
}

/// The attainable-performance roofline of a device at a given arithmetic
/// intensity (FLOP/byte), against the Tensor-Core compute roof.
pub fn roofline_gflops(device: &Device, intensity: f64) -> f64 {
    (device.dram_bw_gbps * intensity).min(device.peak_tc_gflops())
}

/// The ridge point: the intensity where the memory slope meets the TC roof.
pub fn ridge_intensity(device: &Device) -> f64 {
    device.peak_tc_gflops() / device.dram_bw_gbps
}

/// Evaluates a lowered kernel's roofline position: intensity from the
/// trace's total DRAM traffic (using its assumed L2 hit rate for B) and
/// `flops` useful floating-point operations.
pub fn kernel_roofline(device: &Device, trace: &KernelTrace, flops: u64) -> RooflinePoint {
    let b_sectors: f64 = trace.iter_tbs().map(|tb| tb.lsu_b_sectors).sum();
    let other: f64 = trace.iter_tbs().map(|tb| tb.lsu_a_sectors + tb.epilogue_sectors).sum();
    let bytes =
        (b_sectors * (1.0 - trace.assumed_l2_hit_rate) + other) * device.sector_bytes as f64;
    let intensity = if bytes > 0.0 { flops as f64 / bytes } else { f64::INFINITY };
    let bound = roofline_gflops(device, intensity);
    RooflinePoint {
        intensity,
        bound_gflops: bound,
        memory_bound: intensity < ridge_intensity(device),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TbWork;

    #[test]
    fn slope_then_roof() {
        let d = Device::rtx4090();
        let ridge = ridge_intensity(&d);
        // Below the ridge: bandwidth-limited, linear in intensity.
        assert!((roofline_gflops(&d, ridge / 2.0) - d.dram_bw_gbps * ridge / 2.0).abs() < 1e-6);
        // Above the ridge: compute roof.
        assert_eq!(roofline_gflops(&d, ridge * 10.0), d.peak_tc_gflops());
    }

    #[test]
    fn spmm_is_memory_bound() {
        // A CSR-like SpMM reads ~N/8 sectors per nnz for 2N flops per nnz:
        // intensity ~ 2N / (N*4) = 0.5 flop/byte << ridge (~80).
        let d = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.assumed_l2_hit_rate = 0.0;
        let nnz = 10_000u64;
        let n = 128u64;
        trace.push(TbWork {
            lsu_b_sectors: (nnz * n / 8) as f64,
            lsu_a_sectors: (nnz / 4) as f64,
            ..TbWork::default()
        });
        let point = kernel_roofline(&d, &trace, 2 * n * nnz);
        assert!(point.memory_bound, "intensity={}", point.intensity);
        assert!(point.intensity < 1.0);
    }

    #[test]
    fn condensing_raises_the_bound() {
        // Obs. 1/2: fewer B sectors per flop (higher MeanNnzTC) raises the
        // roofline bound.
        let d = Device::rtx4090();
        let flops = 1_000_000u64;
        let mut sparse_traffic = KernelTrace::new(6, 8);
        sparse_traffic.assumed_l2_hit_rate = 0.0;
        sparse_traffic.push(TbWork { lsu_b_sectors: 50_000.0, ..TbWork::default() });
        let mut dense_traffic = KernelTrace::new(6, 8);
        dense_traffic.assumed_l2_hit_rate = 0.0;
        dense_traffic.push(TbWork { lsu_b_sectors: 10_000.0, ..TbWork::default() });
        let p1 = kernel_roofline(&d, &sparse_traffic, flops);
        let p2 = kernel_roofline(&d, &dense_traffic, flops);
        assert!(p2.bound_gflops > p1.bound_gflops);
    }

    #[test]
    fn zero_traffic_is_compute_bound() {
        let d = Device::rtx4090();
        let trace = KernelTrace::new(6, 8);
        let p = kernel_roofline(&d, &trace, 100);
        assert!(!p.memory_bound);
        assert_eq!(p.bound_gflops, d.peak_tc_gflops());
    }
}
