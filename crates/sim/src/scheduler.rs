//! Thread-block scheduling.
//!
//! The initial wave is placed with the paper's acknowledged scheduling
//! policy model (§4.5.2, eq. (1)):
//!
//! ```text
//! sm_idx = 2 * (block_idx mod (num_sms/2)) + (block_idx / (num_sms/2)) mod 2
//! ```
//!
//! (with `num_sms/2 = 64` on the RTX4090, matching the paper exactly).
//! After the initial wave fills each SM's `occupancy` slots, subsequent
//! blocks are dispatched in index order to the earliest-finishing free slot
//! — the greedy refill behaviour the makespan example in Fig 10(c) assumes.

use crate::Device;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of scheduling a sequence of thread blocks.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Sum of durations of the blocks each SM executed.
    pub sm_busy_cycles: Vec<f64>,
    /// Finish time of each SM's last block.
    pub sm_finish_cycles: Vec<f64>,
    /// Kernel makespan: max over SMs of the finish time.
    pub makespan_cycles: f64,
    /// Which SM each block ran on.
    pub block_sm: Vec<usize>,
}

/// The paper's thread-block scheduling policy model (eq. (1)), generalized
/// from the RTX4090's 128 SMs to any even SM count.
pub fn sm_for_block(block_idx: usize, num_sms: usize) -> usize {
    if num_sms <= 1 {
        return 0;
    }
    let half = num_sms / 2;
    let sm = 2 * (block_idx % half) + (block_idx / half) % 2;
    sm % num_sms
}

/// Schedules blocks (with the given per-block durations, in cycles) onto
/// the device and returns per-SM timelines.
pub fn schedule(device: &Device, occupancy: usize, durations: &[f64]) -> ScheduleOutcome {
    let num_sms = device.num_sms;
    let mut sm_busy = vec![0.0f64; num_sms];
    let mut sm_finish = vec![0.0f64; num_sms];
    let mut block_sm = vec![0usize; durations.len()];

    // Min-heap of (finish_time, sm) slots. f64 isn't Ord; use an integer
    // key in picoseconds-of-cycle resolution to keep the heap total-ordered.
    let to_key = |t: f64| -> u64 { (t * 1024.0) as u64 };
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();

    debug_assert!(
        occupancy > 0,
        "occupancy must be positive (legal occupancy is fixed at trace construction)"
    );
    let wave = num_sms * occupancy;
    let mut next_block = 0usize;
    // Initial wave: policy placement.
    while next_block < durations.len() && next_block < wave {
        let sm = sm_for_block(next_block, num_sms);
        let finish = durations[next_block];
        sm_busy[sm] += durations[next_block];
        sm_finish[sm] = sm_finish[sm].max(finish);
        block_sm[next_block] = sm;
        heap.push(Reverse((to_key(finish), sm, next_block)));
        next_block += 1;
    }
    // Refill: earliest-finishing slot takes the next block.
    // Track each slot's own finish time by reusing heap entries.
    while next_block < durations.len() {
        let Reverse((key, sm, _)) = heap.pop().expect("wave is non-empty");
        let start = key as f64 / 1024.0;
        let finish = start + durations[next_block];
        sm_busy[sm] += durations[next_block];
        sm_finish[sm] = sm_finish[sm].max(finish);
        block_sm[next_block] = sm;
        heap.push(Reverse((to_key(finish), sm, next_block)));
        next_block += 1;
    }

    let makespan = sm_finish.iter().cloned().fold(0.0, f64::max);
    ScheduleOutcome {
        sm_busy_cycles: sm_busy,
        sm_finish_cycles: sm_finish,
        makespan_cycles: makespan,
        block_sm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_matches_paper_on_rtx4090() {
        // eq. (1) with 128 SMs: sm = 2*(blk mod 64) + (blk/64 mod 2).
        for blk in 0..512 {
            let expect = (2 * (blk % 64) + (blk / 64) % 2) % 128;
            assert_eq!(sm_for_block(blk, 128), expect, "blk={blk}");
        }
    }

    #[test]
    fn policy_covers_all_sms_in_one_wave() {
        let mut seen = [false; 128];
        for blk in 0..128 {
            seen[sm_for_block(blk, 128)] = true;
        }
        assert!(seen.iter().all(|&s| s), "first 128 blocks must touch all SMs");
    }

    #[test]
    fn uniform_blocks_balance() {
        let device = Device::rtx4090();
        let durations = vec![100.0; 128 * 12];
        let out = schedule(&device, 6, &durations);
        let max = out.sm_busy_cycles.iter().cloned().fold(0.0, f64::max);
        let min = out.sm_busy_cycles.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min).abs() < 1e-9);
        assert!((out.makespan_cycles - 200.0).abs() < 0.1, "{}", out.makespan_cycles);
    }

    #[test]
    fn one_long_block_dominates_makespan() {
        let device = Device::rtx4090();
        let mut durations = vec![10.0; 1000];
        durations[0] = 100_000.0;
        let out = schedule(&device, 6, &durations);
        assert!(out.makespan_cycles >= 100_000.0);
    }

    #[test]
    fn refill_goes_to_earliest_slot() {
        // 2-SM toy device.
        let mut device = Device::rtx4090();
        device.num_sms = 2;
        // occupancy 1: blocks 0,1 fill both SMs; block 2 must go to the
        // faster one (SM of block 1, duration 10).
        let durations = vec![100.0, 10.0, 5.0];
        let out = schedule(&device, 1, &durations);
        assert_eq!(out.block_sm[2], out.block_sm[1]);
        assert!((out.makespan_cycles - 100.0).abs() < 0.1);
    }

    #[test]
    fn empty_schedule() {
        let out = schedule(&Device::rtx4090(), 6, &[]);
        assert_eq!(out.makespan_cycles, 0.0);
    }
}
