//! Run-length-encoded sector streams.
//!
//! L2 simulation replays the dense-operand (B) sector addresses every
//! thread block touches. Kernels fetch B row-by-row (or tile-by-tile), so
//! the raw address sequence is overwhelmingly made of short ascending runs
//! — `base, base+1, …, base+k`. [`SectorStream`] stores exactly that
//! structure: a vector of `(start, len)` runs instead of one `u64` per
//! sector, cutting trace memory by roughly the run length (16x for an
//! `N = 128` B row) while decoding back to the identical address sequence.

/// One maximal run of consecutive sector addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorRun {
    /// First sector address of the run.
    pub start: u64,
    /// Number of consecutive sectors.
    pub len: u32,
}

/// A compressed sequence of 32-byte-sector addresses.
///
/// Appending preserves order exactly: [`iter`](SectorStream::iter) yields
/// the same addresses, in the same order, as the `Vec<u64>` the stream
/// replaces. Runs are merged greedily — pushing `base..base+k` one address
/// at a time or as one [`push_run`](SectorStream::push_run) produces the
/// identical representation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectorStream {
    runs: Vec<SectorRun>,
    len: u64,
}

impl SectorStream {
    /// Creates an empty stream.
    pub const fn new() -> Self {
        SectorStream { runs: Vec::new(), len: 0 }
    }

    /// Builds a stream directly from encoded runs, *without* the greedy
    /// canonicalization of [`push_run`](SectorStream::push_run). The append
    /// path can only ever produce canonical encodings (no zero-length runs,
    /// no mergeable neighbours), so this is the one way to construct a
    /// non-canonical stream — used by `dtc-verify`'s mutation tests to
    /// prove the structural lints actually fire.
    pub fn from_runs(runs: Vec<SectorRun>) -> Self {
        let len = runs.iter().map(|r| r.len as u64).sum();
        SectorStream { runs, len }
    }

    /// Appends one sector address, extending the last run when consecutive.
    pub fn push(&mut self, addr: u64) {
        self.len += 1;
        if let Some(last) = self.runs.last_mut() {
            if last.start + last.len as u64 == addr && last.len < u32::MAX {
                last.len += 1;
                return;
            }
        }
        self.runs.push(SectorRun { start: addr, len: 1 });
    }

    /// Appends `count` consecutive sectors starting at `start` — the shape
    /// lowering code emits for one contiguous B row or tile fetch.
    pub fn push_run(&mut self, start: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.len += count;
        // Merge with the previous run when contiguous.
        let mut start = start;
        let mut remaining = count;
        if let Some(last) = self.runs.last_mut() {
            if last.start + last.len as u64 == start {
                let room = (u32::MAX - last.len) as u64;
                let take = remaining.min(room);
                last.len += take as u32;
                start += take;
                remaining -= take;
            }
        }
        while remaining > 0 {
            let take = remaining.min(u32::MAX as u64);
            self.runs.push(SectorRun { start, len: take as u32 });
            start += take;
            remaining -= take;
        }
    }

    /// Number of sector addresses in the stream (decoded length).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the stream holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of encoded runs (compressed length).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[SectorRun] {
        &self.runs
    }

    /// Heap memory held by the encoded representation, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<SectorRun>()
    }

    /// Drops the append-path capacity slack (traces call this when a stream
    /// is frozen into storage, so footprint == encoded runs).
    pub fn shrink_to_fit(&mut self) {
        self.runs.shrink_to_fit();
    }

    /// Iterates the decoded address sequence in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| (0..r.len as u64).map(move |k| r.start + k))
    }

    /// Decodes the full address sequence (tests and diagnostics).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// A resumable decoding position, for chunked round-robin replay.
    pub fn cursor(&self) -> SectorCursor<'_> {
        SectorCursor { stream: self, run: 0, offset: 0 }
    }
}

impl FromIterator<u64> for SectorStream {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = SectorStream::new();
        for addr in iter {
            s.push(addr);
        }
        s
    }
}

impl From<Vec<u64>> for SectorStream {
    fn from(addrs: Vec<u64>) -> Self {
        addrs.into_iter().collect()
    }
}

/// A decoding cursor over a [`SectorStream`]: yields addresses in stream
/// order and remembers its position across calls, so the L2 replay can
/// interleave fixed-size chunks from many streams.
#[derive(Debug, Clone)]
pub struct SectorCursor<'a> {
    stream: &'a SectorStream,
    run: usize,
    offset: u32,
}

impl Iterator for SectorCursor<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let r = self.stream.runs.get(self.run)?;
        let addr = r.start + self.offset as u64;
        self.offset += 1;
        if self.offset >= r.len {
            self.run += 1;
            self.offset = 0;
        }
        Some(addr)
    }
}

impl SectorCursor<'_> {
    /// Whether the cursor has yielded every address.
    pub fn is_done(&self) -> bool {
        self.run >= self.stream.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_pushes_form_one_run() {
        let mut s = SectorStream::new();
        for a in 48..64 {
            s.push(a);
        }
        assert_eq!(s.num_runs(), 1);
        assert_eq!(s.len(), 16);
        assert_eq!(s.to_vec(), (48..64).collect::<Vec<u64>>());
    }

    #[test]
    fn push_run_equals_pushed_addresses() {
        let mut a = SectorStream::new();
        a.push_run(100, 16);
        a.push_run(116, 4); // contiguous: merges
        a.push_run(400, 8);
        let b: SectorStream = (100..120).chain(400..408).collect();
        assert_eq!(a, b);
        assert_eq!(a.num_runs(), 2);
    }

    #[test]
    fn gaps_split_runs() {
        let mut s = SectorStream::new();
        s.push(1);
        s.push(2);
        s.push(10);
        s.push(9); // descending: new run
        assert_eq!(s.num_runs(), 3);
        assert_eq!(s.to_vec(), vec![1, 2, 10, 9]);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let mut s = SectorStream::new();
        s.push_run(7, 0);
        assert!(s.is_empty());
        assert_eq!(s.num_runs(), 0);
    }

    #[test]
    fn cursor_resumes_across_chunks() {
        let s: SectorStream = (0..10u64).chain(50..55).collect();
        let mut cur = s.cursor();
        let first: Vec<u64> = cur.by_ref().take(7).collect();
        assert_eq!(first, (0..7).collect::<Vec<u64>>());
        assert!(!cur.is_done());
        let rest: Vec<u64> = cur.by_ref().collect();
        assert_eq!(rest, (7..10u64).chain(50..55).collect::<Vec<u64>>());
        assert!(cur.is_done());
    }

    #[test]
    fn memory_is_an_order_of_magnitude_below_raw() {
        // 1000 B-row fetches of 16 sectors each: 16 000 addresses.
        let mut s = SectorStream::new();
        for row in 0..1000u64 {
            s.push_run(row * 16, 16);
        }
        // One merged run: rows are consecutive in this synthetic case.
        assert_eq!(s.len(), 16_000);
        let raw = 16_000 * std::mem::size_of::<u64>();
        assert!(s.memory_bytes() * 10 <= raw, "{} vs {raw}", s.memory_bytes());
    }
}
