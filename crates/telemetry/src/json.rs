//! The one hand-rolled JSON serializer shared by every report writer.
//!
//! The workspace is offline (no serde), so `dtc-verify`'s `LintReport`,
//! `dtc-fuzz`'s `FUZZ.json`, and each `BENCH_*` bin used to carry its own
//! copy of string escaping and pretty-printing — four slightly different
//! ones. This module is the single copy. A [`Json`] value is built
//! bottom-up and rendered deterministically: same tree, same bytes, on
//! every host and thread count (numbers are carried as pre-formatted
//! strings, so formatting decisions stay with the caller).
//!
//! Two layout styles cover every report in the workspace:
//!
//! - **block** objects/arrays ([`Json::obj`], [`Json::arr`]): one entry
//!   per line, two-space indent steps;
//! - **inline** objects/arrays ([`Json::obj_inline`],
//!   [`Json::arr_inline`]): single-line, for leaf records like one lint
//!   diagnostic or one sweep point.

use std::fmt::Write as _;

/// One JSON value with an explicit layout style. Build with the
/// constructors; render with [`Json::render`].
#[derive(Debug, Clone)]
pub enum Json {
    /// A pre-formatted literal: number, bool or null. Emitted verbatim.
    Raw(String),
    /// A string; escaped at render time.
    Str(String),
    /// A block array: one element per line.
    Arr(Vec<Json>),
    /// An inline array: `[a, b, c]` on one line.
    ArrInline(Vec<Json>),
    /// A block object: one field per line.
    Obj(Vec<(String, Json)>),
    /// An inline object: `{"a": 1, "b": 2}` on one line.
    ObjInline(Vec<(String, Json)>),
}

impl Json {
    /// A string value (escaped at render time).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A pre-formatted literal emitted verbatim (caller-controlled number
    /// formatting, `true`/`false`, `null`).
    pub fn raw(s: impl Into<String>) -> Json {
        Json::Raw(s.into())
    }

    /// An unsigned integer.
    pub fn u64(v: u64) -> Json {
        Json::Raw(v.to_string())
    }

    /// A `usize` (rendered as a plain integer).
    pub fn usize(v: usize) -> Json {
        Json::Raw(v.to_string())
    }

    /// A boolean.
    pub fn bool(v: bool) -> Json {
        Json::Raw(v.to_string())
    }

    /// A float with a fixed number of decimals — the caller picks the
    /// precision so reports stay byte-stable.
    pub fn f(v: f64, decimals: usize) -> Json {
        Json::Raw(format!("{v:.decimals$}"))
    }

    /// A block object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An inline (single-line) object from `(key, value)` pairs.
    pub fn obj_inline(fields: Vec<(impl Into<String>, Json)>) -> Json {
        Json::ObjInline(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A block array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// An inline (single-line) array.
    pub fn arr_inline(items: Vec<Json>) -> Json {
        Json::ArrInline(items)
    }

    /// Renders the tree with a trailing newline — the exact bytes every
    /// report file in the workspace is written with.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Raw(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::ArrInline(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out, indent);
                }
                out.push(']');
            }
            Json::ObjInline(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.write(out, indent);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 2);
                    item.write(out, indent + 2);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 2);
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.write(out, indent + 2);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push(' ');
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\rf\u{1}"), "a\\\"b\\\\c\\nd\\te\\rf\\u0001");
    }

    #[test]
    fn block_and_inline_render_byte_stable() {
        let doc = Json::obj(vec![
            ("name", Json::str("x\"y")),
            ("count", Json::u64(3)),
            ("ratio", Json::f(0.5, 3)),
            (
                "points",
                Json::arr(vec![
                    Json::obj_inline(vec![("a", Json::usize(1)), ("b", Json::bool(true))]),
                    Json::obj_inline(vec![("a", Json::usize(2)), ("b", Json::bool(false))]),
                ]),
            ),
            ("empty", Json::arr(vec![])),
            ("flat", Json::arr_inline(vec![Json::u64(1), Json::u64(2)])),
        ]);
        let expect = "{\n  \"name\": \"x\\\"y\",\n  \"count\": 3,\n  \"ratio\": 0.500,\n  \
                      \"points\": [\n    {\"a\": 1, \"b\": true},\n    {\"a\": 2, \"b\": false}\n  \
                      ],\n  \"empty\": [\n  ],\n  \"flat\": [1, 2]\n}\n";
        assert_eq!(doc.render(), expect);
    }

    #[test]
    fn nested_block_objects_indent_by_two() {
        let doc =
            Json::obj(vec![("outer", Json::obj(vec![("inner", Json::arr(vec![Json::str("v")]))]))]);
        let expect = "{\n  \"outer\": {\n    \"inner\": [\n      \"v\"\n    ]\n  }\n}\n";
        assert_eq!(doc.render(), expect);
    }
}
