//! `dtc-telemetry` — a dependency-free, process-wide metrics registry.
//!
//! DTC-SpMM's performance story is told in counters (instruction mixes,
//! cache hits, per-phase times, §5 of the paper); this crate is the
//! workspace-wide substrate that collects the *host-side* analogues and
//! exports them as structured JSON. Three primitive kinds:
//!
//! - [`Counter`] — a monotonic `u64` backed by a relaxed atomic. Counting
//!   is always on: one `fetch_add` with no allocation, cheap enough for
//!   hot paths regardless of whether a sink is configured.
//! - [`Gauge`] — a last-write-wins `f64` (thread count, occupancy, …).
//! - [`span`] — a hierarchical timed region. Spans nest per thread
//!   (guards build `parent/child` paths from a thread-local stack) and
//!   aggregate across threads (count / total / min / max plus the number
//!   of distinct contributing threads). Span timing is **disabled unless
//!   a sink is configured** (`DTC_METRICS` set or [`set_enabled`]`(true)`)
//!   — a disabled [`span`] reads one relaxed atomic and returns a no-op
//!   guard, so instrumented hot paths stay near-zero-cost.
//!
//! The registry is exported with [`snapshot`] (programmatic) or
//! [`flush_env_sink`] (writes JSON to the path in `DTC_METRICS`; bench
//! binaries call it on exit).
//!
//! # Example
//!
//! ```
//! dtc_telemetry::set_enabled(true);
//! let c = dtc_telemetry::counter("example.widgets");
//! c.add(3);
//! {
//!     let _outer = dtc_telemetry::span("build");
//!     let _inner = dtc_telemetry::span("convert"); // recorded as "build/convert"
//! }
//! let snap = dtc_telemetry::snapshot();
//! assert!(snap.counter("example.widgets").unwrap() >= 3);
//! assert!(snap.spans.iter().any(|s| s.path == "build/convert"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// A monotonic event counter. Obtain one with [`counter`]; hot paths should
/// look it up once and reuse the `&'static` handle.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (relaxed; no ordering guarantees needed for
    /// statistics).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins scalar (stored as `f64` bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Aggregated statistics of one span path across all of its executions.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    /// Number of completed executions.
    pub count: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest execution, nanoseconds.
    pub min_ns: u64,
    /// Longest execution, nanoseconds.
    pub max_ns: u64,
    /// Number of distinct threads that executed this span.
    pub threads: usize,
    seen_threads: Vec<ThreadId>,
}

impl SpanStats {
    fn record(&mut self, ns: u64, thread: ThreadId) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
        // Bounded distinct-thread tracking; 64 is far above any dtc-par pool.
        if self.seen_threads.len() < 64 && !self.seen_threads.contains(&thread) {
            self.seen_threads.push(thread);
        }
        self.threads = self.seen_threads.len();
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

/// Whether span timing is active. Counters always count.
///
/// Initialized lazily: `true` iff `DTC_METRICS` is set in the environment,
/// unless overridden by [`set_enabled`].
static ENABLED: AtomicU64 = AtomicU64::new(0); // 0 = uninit, 1 = off, 2 = on
static ENABLED_OVERRIDE: AtomicBool = AtomicBool::new(false);

/// Returns whether span timing (and sink export) is enabled.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var_os("DTC_METRICS").is_some();
            // Racing initializers agree (same env), so a plain store is fine;
            // never clobber an explicit set_enabled that won the race.
            if !ENABLED_OVERRIDE.load(Ordering::Relaxed) {
                let _ = ENABLED.compare_exchange(
                    0,
                    if on { 2 } else { 1 },
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            ENABLED.load(Ordering::Relaxed) == 2
        }
    }
}

/// Forces span timing on or off, overriding the `DTC_METRICS` default.
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(true, Ordering::Relaxed);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Returns the registered counter named `name`, creating it on first use.
///
/// The handle is `&'static`: hot paths should call this once (e.g. through
/// a `OnceLock`) and then use [`Counter::add`] directly.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = registry().counters.lock().unwrap();
    if let Some(c) = map.get(name) {
        return c;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter { value: AtomicU64::new(0) }));
    map.insert(name.to_owned(), leaked);
    leaked
}

/// Returns the registered gauge named `name`, creating it on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = registry().gauges.lock().unwrap();
    if let Some(g) = map.get(name) {
        return g;
    }
    let leaked: &'static Gauge =
        Box::leak(Box::new(Gauge { bits: AtomicU64::new(0f64.to_bits()) }));
    map.insert(name.to_owned(), leaked);
    leaked
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A live timed region; records its duration into the registry on drop.
/// Obtain with [`span`].
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Full hierarchical path; `None` when telemetry is disabled (no-op).
    path: Option<String>,
    start: Option<Instant>,
}

/// Opens a timed span named `name`.
///
/// Spans nest: a span opened while another is live on the same thread is
/// recorded under `parent/child`. When telemetry is disabled this is one
/// relaxed atomic load and a no-op guard.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { path: None, start: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_owned(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard { path: Some(path), start: Some(Instant::now()) }
}

/// Times `f` under a span named `name` (convenience for expression position).
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        let ns = self.start.map(|s| s.elapsed().as_nanos() as u64).unwrap_or(0);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order per thread, so the top is this span.
            debug_assert_eq!(stack.last(), Some(&path));
            stack.pop();
        });
        let mut spans = registry().spans.lock().unwrap();
        spans.entry(path).or_default().record(ns, std::thread::current().id());
    }
}

/// One counter sample in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge sample in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// One span aggregate in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct SpanSample {
    /// Hierarchical path (`parent/child`).
    pub path: String,
    /// Aggregated statistics.
    pub stats: SpanStats,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All span aggregates, sorted by path.
    pub spans: Vec<SpanSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a span aggregate by path.
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.path == path).map(|s| &s.stats)
    }

    /// Renders the snapshot as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(&c.name), c.value));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(&g.name), json_f64(g.value)));
        }
        out.push_str("\n  },\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"path\": {}, \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"threads\": {} }}",
                json_string(&s.path),
                s.stats.count,
                s.stats.total_ns,
                s.stats.min_ns,
                s.stats.max_ns,
                s.stats.threads
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Takes a point-in-time copy of every counter, gauge and span aggregate.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(name, c)| CounterSample { name: name.clone(), value: c.get() })
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(name, g)| GaugeSample { name: name.clone(), value: g.get() })
        .collect();
    let spans = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(path, stats)| SpanSample { path: path.clone(), stats: stats.clone() })
        .collect();
    MetricsSnapshot { counters, gauges, spans }
}

/// Writes the current snapshot as JSON to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

/// If `DTC_METRICS` names a path, writes the snapshot there and returns the
/// path. Binaries call this once before exiting; libraries never do.
pub fn flush_env_sink() -> Option<std::path::PathBuf> {
    let path = std::path::PathBuf::from(std::env::var_os("DTC_METRICS")?);
    match write_json(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("dtc-telemetry: failed to write DTC_METRICS={}: {e}", path.display());
            None
        }
    }
}

/// Zeroes every counter and gauge and clears all span aggregates (handles
/// stay valid). Intended for tests.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().unwrap().values() {
        g.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
    reg.spans.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-wide registry; serialize the ones that reset
    /// or toggle the enable flag.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counter_accumulates_and_interns() {
        let _g = LOCK.lock().unwrap();
        let a = counter("test.counter.a");
        let before = a.get();
        a.incr();
        a.add(4);
        assert_eq!(a.get(), before + 5);
        // Same name → same handle.
        assert!(std::ptr::eq(a, counter("test.counter.a")));
    }

    #[test]
    fn gauge_last_write_wins() {
        let _g = LOCK.lock().unwrap();
        let g = gauge("test.gauge");
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn spans_nest_into_paths() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        let snap = snapshot();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("outer/inner").unwrap().count, 1);
        set_enabled(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _a = span("ghost");
        }
        assert!(snapshot().span("ghost").is_none());
    }

    #[test]
    fn span_stats_track_min_max_and_threads() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..3 {
                        let _s = span("worker");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        let stats = snap.span("worker").unwrap();
        assert_eq!(stats.count, 12);
        assert_eq!(stats.threads, 4);
        assert!(stats.min_ns <= stats.max_ns);
        assert!(stats.total_ns >= stats.max_ns);
        set_enabled(false);
    }

    #[test]
    fn json_is_well_formed() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter("test.json\"quoted").incr();
        gauge("test.json.gauge").set(1.5);
        {
            let _s = span("json-span");
        }
        let json = snapshot().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"test.json\\\"quoted\": 1"));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"path\": \"json-span\""));
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        set_enabled(false);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _l = LOCK.lock().unwrap();
        let c = counter("test.reset");
        c.add(10);
        reset();
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(snapshot().counter("test.reset"), Some(1));
    }

    #[test]
    fn time_returns_value() {
        assert_eq!(time("timed", || 7), 7);
    }
}
