//! The unit of analysis: one lowered trace plus the context needed to
//! judge it.

use dtc_sim::{Device, KernelTrace};

/// The SpMM problem instance a trace claims to solve. Conservation lints
/// need it to compute compulsory work and traffic; structural lints can
/// run without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemSpec {
    /// Rows of the sparse operand A.
    pub rows: usize,
    /// Columns of A (= rows of the dense operand B).
    pub cols: usize,
    /// Non-zeros of A.
    pub nnz: usize,
    /// Columns of B (the paper's N).
    pub n: usize,
    /// Distinct columns of A — the number of B rows any kernel must fetch
    /// at least once.
    pub b_rows_touched: usize,
}

impl ProblemSpec {
    /// Compulsory useful work: one multiply-accumulate per non-zero per
    /// output column.
    pub fn compulsory_macs(&self) -> f64 {
        self.nnz as f64 * self.n as f64
    }

    /// Compulsory sparse-operand bytes: each stored value is at least one
    /// 4-byte scalar that must be read once.
    pub fn compulsory_a_bytes(&self) -> f64 {
        self.nnz as f64 * 4.0
    }

    /// Compulsory dense-operand bytes: every touched B row must be read
    /// across the full N width at 4 bytes per scalar.
    pub fn compulsory_b_bytes(&self) -> f64 {
        self.b_rows_touched as f64 * self.n as f64 * 4.0
    }
}

/// One trace under analysis: the kernel it came from, the device cost
/// model it targets, and optional context that unlocks deeper lints.
#[derive(Debug, Clone, Copy)]
pub struct TraceCase<'a> {
    /// Kernel name (for report labeling only).
    pub kernel: &'a str,
    /// The device cost model the trace targets.
    pub device: &'a Device,
    /// The lowered trace.
    pub trace: &'a KernelTrace,
    /// The problem instance, when known — enables conservation lints.
    pub problem: Option<ProblemSpec>,
    /// Whether sparse double buffering (§4.4.2) was enabled at lowering:
    /// `Some(false)` makes any `overlap_a_fetch` block illegal. `None`
    /// (unknown) skips the gating lint.
    pub sdb_enabled: Option<bool>,
}

impl<'a> TraceCase<'a> {
    /// A case with no problem context (structural + resource + coverage
    /// lints only).
    pub fn new(kernel: &'a str, device: &'a Device, trace: &'a KernelTrace) -> Self {
        TraceCase { kernel, device, trace, problem: None, sdb_enabled: None }
    }

    /// Attaches the problem instance, unlocking conservation lints.
    pub fn with_problem(mut self, problem: ProblemSpec) -> Self {
        self.problem = Some(problem);
        self
    }

    /// Declares whether sparse double buffering was enabled at lowering.
    pub fn with_sdb(mut self, enabled: bool) -> Self {
        self.sdb_enabled = Some(enabled);
        self
    }
}
