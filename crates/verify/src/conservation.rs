//! Conservation laws: a trace that claims to solve `C = A x B` must carry
//! at least the compulsory work and traffic of the problem instance —
//! enough multiply-accumulate capacity for `nnz x N`, enough sparse-operand
//! bytes to have read A once, and enough dense-operand bytes to have read
//! every touched B row once. A lowering site that undercuts any of these
//! bounds is advertising impossible performance.

use crate::case::TraceCase;
use crate::diag::{Diagnostic, LintId, Location};
use crate::structural::capped;

/// MACs one `m16n8k8`-equivalent HMMA can retire (16 x 8 x 8).
const MACS_PER_HMMA_OP: f64 = 1024.0;
/// MACs of the smallest counted HMMA shape, `m16n8k4` (16 x 8 x 4).
/// `hmma_count` is precision-invariant, so this basis stays valid when
/// FP16/BF16 halve `hmma_ops`.
const MACS_PER_HMMA_COUNT: f64 = 512.0;
/// MACs one warp-level FFMA retires (32 lanes).
const MACS_PER_FFMA: f64 = 32.0;
/// Relative slack shielding the exactly-tight lowerings (DTC's dense TC
/// blocks, cuSPARSE's per-element FFMA) from f64 accumulation noise.
const SLACK: f64 = 1.0 - 1e-9;

/// Runs the conservation lints; returns the number of lint passes executed.
pub(crate) fn run(case: &TraceCase, diags: &mut Vec<Diagnostic>) -> usize {
    let trace = case.trace;
    let mut passes = 0;

    // cp-async-gating needs only the lowering flag, not the problem.
    if let Some(sdb) = case.sdb_enabled {
        passes += 1;
        if !sdb {
            let mut found = 0;
            for (c, tb) in trace.classes().iter().enumerate() {
                if tb.overlap_a_fetch {
                    found = capped(
                        diags,
                        found,
                        Diagnostic::new(
                            LintId::CpAsyncGating,
                            Location::class(c),
                            "overlap_a_fetch (cp.async double buffering) claimed but SDB is disabled"
                                .into(),
                        ),
                    );
                }
            }
        }
    }

    let Some(problem) = case.problem else {
        return passes;
    };
    let mults = trace.class_multiplicities();

    // macs-insufficient: per-class MAC capacity summed over multiplicity.
    // Each class's TC capacity is the larger of its two HMMA bases (the
    // time basis `hmma_ops` and the precision-invariant `hmma_count`).
    passes += 1;
    let mut macs = 0.0f64;
    for (tb, &mult) in trace.classes().iter().zip(&mults) {
        let tc = (tb.hmma_ops * MACS_PER_HMMA_OP).max(tb.hmma_count * MACS_PER_HMMA_COUNT);
        macs += (tc + tb.fp_ops * MACS_PER_FFMA) * mult as f64;
    }
    let need = problem.compulsory_macs();
    if macs < need * SLACK {
        diags.push(Diagnostic::new(
            LintId::MacsInsufficient,
            Location::TRACE,
            format!(
                "MAC capacity {macs:.0} below the compulsory nnz x N = {need:.0} ({} nnz x {} cols)",
                problem.nnz, problem.n
            ),
        ));
    }

    // a-traffic-compulsory: sparse-operand sectors vs the A footprint.
    passes += 1;
    let a_bytes: f64 =
        trace.classes().iter().zip(&mults).map(|(tb, &m)| tb.lsu_a_sectors * 32.0 * m as f64).sum();
    let a_need = problem.compulsory_a_bytes();
    if a_bytes < a_need * SLACK {
        diags.push(Diagnostic::new(
            LintId::ATrafficCompulsory,
            Location::TRACE,
            format!(
                "A traffic {a_bytes:.0} B below the compulsory footprint {a_need:.0} B ({} nnz x 4 B)",
                problem.nnz
            ),
        ));
    }

    // b-traffic-compulsory: dense-operand sectors vs the touched B rows.
    passes += 1;
    let b_bytes: f64 =
        trace.classes().iter().zip(&mults).map(|(tb, &m)| tb.lsu_b_sectors * 32.0 * m as f64).sum();
    let b_need = problem.compulsory_b_bytes();
    if b_bytes < b_need * SLACK {
        diags.push(Diagnostic::new(
            LintId::BTrafficCompulsory,
            Location::TRACE,
            format!(
                "B traffic {b_bytes:.0} B below the compulsory footprint {b_need:.0} B ({} touched rows x {} cols x 4 B)",
                problem.b_rows_touched, problem.n
            ),
        ));
    }

    passes
}
