//! Cost-table coverage: every instruction class a lowering site can emit
//! must have a sane, nonzero cost entry in the device model — otherwise
//! the simulator silently prices that work at zero (or infinity) and every
//! downstream comparison is corrupt.

use crate::case::TraceCase;
use crate::diag::{Diagnostic, LintId, Location};
use dtc_sim::isa::Instruction;

/// Every ISA instruction the lowering vocabulary contains.
const ISA: [Instruction; 11] = [
    Instruction::Hmma,
    Instruction::Imad,
    Instruction::Ldg32,
    Instruction::Ldg128,
    Instruction::Sts,
    Instruction::Lds,
    Instruction::CpAsync,
    Instruction::Shfl,
    Instruction::Ffma,
    Instruction::Atom,
    Instruction::Stg32,
];

fn positive_finite(v: f64) -> bool {
    v.is_finite() && v > 0.0
}

/// Runs the coverage lints; returns the number of lint passes executed.
pub(crate) fn run(case: &TraceCase, diags: &mut Vec<Diagnostic>) -> usize {
    let device = case.device;
    let trace = case.trace;
    let mut passes = 0;

    // device-sanity: scalar parameters in range.
    passes += 1;
    let scalar_checks: [(&str, f64); 4] = [
        ("sm_clock_ghz", device.sm_clock_ghz),
        ("dram_bw_gbps", device.dram_bw_gbps),
        ("mem_latency_cycles", device.mem_latency_cycles),
        ("hmma_latency_cycles", device.hmma_latency_cycles),
    ];
    for (name, v) in scalar_checks {
        if !positive_finite(v) {
            diags.push(Diagnostic::new(
                LintId::DeviceSanity,
                Location::TRACE,
                format!("{name} = {v} must be positive and finite"),
            ));
        }
    }
    if device.num_sms == 0 {
        diags.push(Diagnostic::new(
            LintId::DeviceSanity,
            Location::TRACE,
            "num_sms = 0: a device needs at least one SM".into(),
        ));
    }
    if device.sector_bytes == 0 {
        diags.push(Diagnostic::new(
            LintId::DeviceSanity,
            Location::TRACE,
            "sector_bytes = 0: memory transactions need a positive sector size".into(),
        ));
    }
    if device.l2_ways == 0 {
        diags.push(Diagnostic::new(
            LintId::DeviceSanity,
            Location::TRACE,
            "l2_ways = 0: the L2 model needs at least one way".into(),
        ));
    }
    if device.l2_bytes < device.l2_ways as u64 * device.sector_bytes as u64 {
        diags.push(Diagnostic::new(
            LintId::DeviceSanity,
            Location::TRACE,
            format!(
                "l2_bytes = {} cannot hold even one set of {} ways x {} B sectors",
                device.l2_bytes, device.l2_ways, device.sector_bytes
            ),
        ));
    }

    // cost-table-coverage: aggregate the emitted work per pipe, then
    // require a nonzero throughput (or per-op cost) for each pipe used.
    passes += 1;
    let mut hmma = 0.0f64;
    let mut alu = 0.0f64;
    let mut fp = 0.0f64;
    let mut lsu = 0.0f64;
    let mut smem = 0.0f64;
    let mut shfl = 0.0f64;
    let mut atom = 0.0f64;
    for tb in trace.classes() {
        hmma += tb.hmma_ops;
        alu += tb.alu_ops;
        fp += tb.fp_ops;
        lsu += tb.lsu_a_sectors + tb.lsu_b_sectors + tb.epilogue_sectors;
        smem += tb.smem_ops;
        shfl += tb.shfl_ops;
        atom += tb.atom_ops;
    }
    let pipe_checks: [(&str, f64, &str, f64); 7] = [
        ("hmma_ops", hmma, "tc_hmma_per_cycle", device.tc_hmma_per_cycle),
        ("alu_ops", alu, "alu_ops_per_cycle", device.alu_ops_per_cycle),
        ("fp_ops", fp, "fp32_ops_per_cycle", device.fp32_ops_per_cycle),
        ("lsu sectors", lsu, "lsu_sectors_per_cycle", device.lsu_sectors_per_cycle),
        ("smem_ops", smem, "smem_ops_per_cycle", device.smem_ops_per_cycle),
        ("shfl_ops", shfl, "shfl_ops_per_cycle", device.shfl_ops_per_cycle),
        ("atom_ops", atom, "atomic_cost_cycles", device.atomic_cost_cycles),
    ];
    for (work_name, work, entry_name, entry) in pipe_checks {
        if work > 0.0 && !positive_finite(entry) {
            diags.push(Diagnostic::new(
                LintId::CostTableCoverage,
                Location::TRACE,
                format!(
                    "trace emits {work:.0} {work_name} but the device's {entry_name} = {entry} prices them at no cost"
                ),
            ));
        }
    }

    // isa-latency: the per-instruction table must be positive and finite
    // for the whole vocabulary, whatever the trace emits.
    passes += 1;
    for instr in ISA {
        let lat = instr.latency_cycles(device);
        if !positive_finite(lat) {
            diags.push(Diagnostic::new(
                LintId::IsaLatency,
                Location::TRACE,
                format!("{instr:?} latency = {lat} cycles must be positive and finite"),
            ));
        }
        let sectors = instr.sectors_per_warp();
        if !(sectors.is_finite() && sectors >= 0.0) {
            diags.push(Diagnostic::new(
                LintId::IsaLatency,
                Location::TRACE,
                format!("{instr:?} sectors_per_warp = {sectors} must be finite and non-negative"),
            ));
        }
    }

    passes
}
