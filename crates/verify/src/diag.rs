//! Diagnostics: stable lint identities, severities and machine-readable
//! locations.
//!
//! Every finding the analyzer produces is a [`Diagnostic`]: a [`LintId`]
//! (the stable kebab-case name CI greps for), the lint's fixed
//! [`Severity`], a [`Location`] inside the trace, and a human-readable
//! message with the offending numbers.

use std::fmt;

/// How bad a finding is. `Error` findings fail CI; `Warning`s flag
/// suspicious-but-legal traces; `Info` marks reduced lint coverage (e.g. a
/// trace lowered without resource metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Reduced analysis coverage — nothing is known to be wrong.
    Info,
    /// Legal but suspicious; worth a human look.
    Warning,
    /// A hard invariant violation: the trace (or model) is illegal.
    Error,
}

impl Severity {
    /// Lower-case name, as emitted in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable identity of one lint in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    // Structural invariants of the trace itself.
    /// `occupancy == 0`: the block cannot fit on an SM at all.
    OccupancyZero,
    /// `warps_per_tb == 0`: a thread block with no warps.
    WarpsZero,
    /// A work field is NaN, infinite or negative.
    NonfiniteCount,
    /// `assumed_l2_hit_rate` outside `[0, 1]`.
    HitRateRange,
    /// A sector stream is not canonically run-length encoded.
    StreamNonCanonical,
    /// A sector address beyond the B operand's footprint.
    StreamOutOfBounds,
    /// Two interned duration classes are bit-for-bit identical.
    ClassDuplicate,
    /// A duration class no thread block references.
    ClassUnreferenced,
    // Resource legality against the SM limits (paper eq. 6).
    /// `occupancy × warps_per_tb` exceeds the SM's warp slots.
    WarpSlots,
    /// `occupancy` exceeds the SM's resident-block limit.
    BlockSlots,
    /// Resident blocks' shared memory exceeds the SM capacity.
    SmemCapacity,
    /// Resident blocks' registers exceed the SM register file.
    RegisterFile,
    /// Trace occupancy inconsistent with the occupancy derived from the
    /// kernel's resources (paper eq. 6).
    OccupancyEq6,
    /// Attached resources disagree with the trace's `warps_per_tb`.
    WarpsMismatch,
    /// No [`KernelResources`](dtc_sim::occupancy::KernelResources)
    /// attached: register/smem legality cannot be checked.
    ResourcesMissing,
    // Conservation laws against the problem instance.
    /// Useful-MAC capacity below `nnz × N`: the kernel cannot have
    /// computed the product it claims.
    MacsInsufficient,
    /// Sparse-operand traffic below the compulsory A footprint.
    ATrafficCompulsory,
    /// Dense-operand traffic below the compulsory B footprint.
    BTrafficCompulsory,
    /// `cp.async` overlap claimed while sparse double buffering is off.
    CpAsyncGating,
    // Cost-table coverage of the device model.
    /// Emitted pipe work with a zero/invalid device cost entry.
    CostTableCoverage,
    /// An ISA instruction with a non-positive or non-finite latency.
    IsaLatency,
    /// A device parameter outside its sane range.
    DeviceSanity,
    // Speed-of-light checks over a simulation report.
    /// Reported cycles below the Tensor-Core speed-of-light bound.
    SolTensorCore,
    /// Reported cycles below the DRAM-bandwidth speed-of-light bound.
    SolDram,
    /// A reported utilization/hit-rate outside `[0, 1]`.
    UtilizationRange,
    /// Report counters inconsistent with the trace they came from.
    CounterIdentity,
}

impl LintId {
    /// Every lint in the catalog, in report order.
    pub const ALL: [LintId; 26] = [
        LintId::OccupancyZero,
        LintId::WarpsZero,
        LintId::NonfiniteCount,
        LintId::HitRateRange,
        LintId::StreamNonCanonical,
        LintId::StreamOutOfBounds,
        LintId::ClassDuplicate,
        LintId::ClassUnreferenced,
        LintId::WarpSlots,
        LintId::BlockSlots,
        LintId::SmemCapacity,
        LintId::RegisterFile,
        LintId::OccupancyEq6,
        LintId::WarpsMismatch,
        LintId::ResourcesMissing,
        LintId::MacsInsufficient,
        LintId::ATrafficCompulsory,
        LintId::BTrafficCompulsory,
        LintId::CpAsyncGating,
        LintId::CostTableCoverage,
        LintId::IsaLatency,
        LintId::DeviceSanity,
        LintId::SolTensorCore,
        LintId::SolDram,
        LintId::UtilizationRange,
        LintId::CounterIdentity,
    ];

    /// The stable kebab-case name (what CI and reports key on).
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::OccupancyZero => "occupancy-zero",
            LintId::WarpsZero => "warps-zero",
            LintId::NonfiniteCount => "nonfinite-count",
            LintId::HitRateRange => "hit-rate-range",
            LintId::StreamNonCanonical => "stream-non-canonical",
            LintId::StreamOutOfBounds => "stream-out-of-bounds",
            LintId::ClassDuplicate => "class-duplicate",
            LintId::ClassUnreferenced => "class-unreferenced",
            LintId::WarpSlots => "warp-slots",
            LintId::BlockSlots => "block-slots",
            LintId::SmemCapacity => "smem-capacity",
            LintId::RegisterFile => "register-file",
            LintId::OccupancyEq6 => "occupancy-eq6",
            LintId::WarpsMismatch => "warps-mismatch",
            LintId::ResourcesMissing => "resources-missing",
            LintId::MacsInsufficient => "macs-insufficient",
            LintId::ATrafficCompulsory => "a-traffic-compulsory",
            LintId::BTrafficCompulsory => "b-traffic-compulsory",
            LintId::CpAsyncGating => "cp-async-gating",
            LintId::CostTableCoverage => "cost-table-coverage",
            LintId::IsaLatency => "isa-latency",
            LintId::DeviceSanity => "device-sanity",
            LintId::SolTensorCore => "sol-tensor-core",
            LintId::SolDram => "sol-dram",
            LintId::UtilizationRange => "utilization-range",
            LintId::CounterIdentity => "counter-identity",
        }
    }

    /// The lint's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            LintId::ResourcesMissing => Severity::Info,
            LintId::ClassDuplicate | LintId::ClassUnreferenced => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description for the catalog listing.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::OccupancyZero => "occupancy must be positive: 0 means the block cannot fit",
            LintId::WarpsZero => "warps_per_tb must be positive",
            LintId::NonfiniteCount => "work fields must be finite and non-negative",
            LintId::HitRateRange => "assumed L2 hit rate must be in [0, 1]",
            LintId::StreamNonCanonical => {
                "sector runs must be canonical RLE (no empty or mergeable runs)"
            }
            LintId::StreamOutOfBounds => "sector addresses must stay inside the B footprint",
            LintId::ClassDuplicate => "interned duration classes must be unique",
            LintId::ClassUnreferenced => "every duration class must be referenced by a block",
            LintId::WarpSlots => "occupancy x warps must fit the SM warp slots",
            LintId::BlockSlots => "occupancy must fit the SM resident-block limit",
            LintId::SmemCapacity => "resident shared memory must fit the SM capacity",
            LintId::RegisterFile => "resident registers must fit the SM register file",
            LintId::OccupancyEq6 => "trace occupancy must match eq. 6 for the attached resources",
            LintId::WarpsMismatch => "attached resources must agree with warps_per_tb",
            LintId::ResourcesMissing => {
                "no KernelResources attached; register/smem legality unchecked"
            }
            LintId::MacsInsufficient => "useful-MAC capacity must cover nnz x N",
            LintId::ATrafficCompulsory => "A traffic must cover the compulsory sparse footprint",
            LintId::BTrafficCompulsory => "B traffic must cover the compulsory dense footprint",
            LintId::CpAsyncGating => "cp.async overlap requires sparse double buffering",
            LintId::CostTableCoverage => "every emitted pipe needs a nonzero device cost entry",
            LintId::IsaLatency => "every ISA instruction needs a positive finite latency",
            LintId::DeviceSanity => "device parameters must be in sane ranges",
            LintId::SolTensorCore => "cycles must not beat the Tensor-Core speed of light",
            LintId::SolDram => "cycles must not beat the DRAM speed of light",
            LintId::UtilizationRange => "utilizations and hit rates must be in [0, 1]",
            LintId::CounterIdentity => "report counters must match the trace totals",
        }
    }
}

/// A catalog entry: lint identity plus its fixed severity and summary.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// The lint.
    pub id: LintId,
    /// Its fixed severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// The full lint catalog, in report order.
pub fn catalog() -> Vec<LintInfo> {
    LintId::ALL
        .iter()
        .map(|&id| LintInfo { id, severity: id.severity(), summary: id.summary() })
        .collect()
}

/// Where in a trace a diagnostic points. `None` everywhere means the
/// finding is about the trace (or device) as a whole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Location {
    /// Duration-class index into `KernelTrace::classes`.
    pub class: Option<usize>,
    /// Thread-block index in launch order.
    pub tb: Option<usize>,
}

impl Location {
    /// A trace-wide finding.
    pub const TRACE: Location = Location { class: None, tb: None };

    /// A finding about duration class `c`.
    pub fn class(c: usize) -> Self {
        Location { class: Some(c), tb: None }
    }

    /// A finding about thread block `i` (launch order).
    pub fn tb(i: usize) -> Self {
        Location { class: None, tb: Some(i) }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.class, self.tb) {
            (Some(c), _) => write!(f, "class {c}"),
            (None, Some(t)) => write!(f, "tb {t}"),
            (None, None) => write!(f, "trace"),
        }
    }
}

/// One finding: lint, severity, location and a message with the numbers.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: LintId,
    /// The lint's severity (always `lint.severity()`).
    pub severity: Severity,
    /// Where it fired.
    pub location: Location,
    /// Human-readable explanation including the offending values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the lint's fixed severity.
    pub fn new(lint: LintId, location: Location, message: String) -> Self {
        Diagnostic { lint, severity: lint.severity(), location, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] @ {}: {}",
            self.severity.as_str(),
            self.lint.as_str(),
            self.location,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for id in LintId::ALL {
            assert!(seen.insert(id.as_str()), "duplicate id {}", id.as_str());
            assert!(
                id.as_str()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "non-kebab id {}",
                id.as_str()
            );
        }
        assert_eq!(seen.len(), LintId::ALL.len());
    }

    #[test]
    fn catalog_matches_all() {
        let cat = catalog();
        assert_eq!(cat.len(), LintId::ALL.len());
        for (info, id) in cat.iter().zip(LintId::ALL) {
            assert_eq!(info.id, id);
            assert_eq!(info.severity, id.severity());
        }
    }

    #[test]
    fn display_is_greppable() {
        let d = Diagnostic::new(LintId::WarpSlots, Location::TRACE, "6 x 9 > 48".into());
        let s = d.to_string();
        assert!(s.starts_with("error[warp-slots]"), "{s}");
    }
}
