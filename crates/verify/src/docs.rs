//! Lint documentation: `--explain` lookups and the generated
//! `docs/LINTS.md` reference.
//!
//! Both registries — the trace/report lints ([`crate::catalog`]) and the
//! concurrency lints ([`crate::sched_catalog`]) — feed one generator, so
//! the checked-in markdown can never drift from the code: a test in the
//! root `tests/` tree re-renders it and compares bytes, and
//! `tracelint --explain <lint-id>` serves the same rows interactively.

use crate::{catalog, sched_catalog, Severity};

/// One documented lint, registry-agnostic: stable id, fixed severity,
/// one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintDoc {
    /// The stable kebab-case lint id.
    pub id: &'static str,
    /// The lint's fixed severity.
    pub severity: Severity,
    /// One-line description of what the lint catches.
    pub summary: &'static str,
}

/// Every lint in both registries, in report order (trace/report lints
/// first, then the concurrency lints).
pub fn all_lints() -> Vec<LintDoc> {
    catalog()
        .into_iter()
        .map(|l| LintDoc { id: l.id.as_str(), severity: l.severity, summary: l.summary })
        .chain(sched_catalog().into_iter().map(|l| LintDoc {
            id: l.id.as_str(),
            severity: l.severity,
            summary: l.summary,
        }))
        .collect()
}

/// Looks up one lint by its stable id, across both registries.
pub fn explain_lint(id: &str) -> Option<LintDoc> {
    all_lints().into_iter().find(|l| l.id == id)
}

/// Renders the `docs/LINTS.md` reference — one table per registry. The
/// checked-in file is pinned byte-for-byte against this output by
/// `tests/lint_docs.rs`.
pub fn lints_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Lint reference\n\n");
    out.push_str("Generated from the registries in `dtc-verify` — do not edit by hand.\n");
    out.push_str(
        "Regenerate with `cargo run --release -p dtc-bench --bin tracelint -- --lints-md`;\n",
    );
    out.push_str("`tests/lint_docs.rs` fails when this file drifts from the code.\n");
    out.push_str("Look up a single lint with `tracelint --explain <lint-id>`.\n");

    let table = |out: &mut String, title: &str, intro: &str, rows: &[LintDoc]| {
        out.push_str(&format!("\n## {title}\n\n{intro}\n\n"));
        out.push_str("| id | severity | summary |\n|---|---|---|\n");
        for l in rows {
            out.push_str(&format!("| `{}` | {} | {} |\n", l.id, l.severity.as_str(), l.summary));
        }
    };
    let trace: Vec<LintDoc> = catalog()
        .into_iter()
        .map(|l| LintDoc { id: l.id.as_str(), severity: l.severity, summary: l.summary })
        .collect();
    let sched: Vec<LintDoc> = sched_catalog()
        .into_iter()
        .map(|l| LintDoc { id: l.id.as_str(), severity: l.severity, summary: l.summary })
        .collect();
    table(
        &mut out,
        "Trace and report lints",
        "Run by `verify_trace` / `verify_report` over every lowered kernel trace \
         (the `tracelint` CI gate) and, at admission time, by the serving layer.",
        &trace,
    );
    table(
        &mut out,
        "Concurrency lints",
        "Run by the `dtc-sched` model checker and the plan/exec-log/lock-graph/pool \
         verifiers in `dtc_verify::sched` (the `schedcheck` CI gate).",
        &sched,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_finds_lints_from_both_registries() {
        let t = explain_lint("cost-table-coverage").expect("trace lint");
        assert_eq!(t.severity, Severity::Error);
        let s = explain_lint("sched-slot-exclusivity").expect("sched lint");
        assert_eq!(s.severity, Severity::Error);
        assert!(explain_lint("no-such-lint").is_none());
    }

    #[test]
    fn markdown_covers_every_lint_exactly_once() {
        let md = lints_markdown();
        for l in all_lints() {
            assert_eq!(
                md.matches(&format!("| `{}` |", l.id)).count(),
                1,
                "lint {} must appear exactly once",
                l.id
            );
        }
    }

    #[test]
    fn ids_are_unique_across_registries() {
        let all = all_lints();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate lint id across registries");
            }
        }
    }
}
