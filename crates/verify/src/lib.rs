//! `dtc-verify`: a static analyzer for kernel traces and the device cost
//! model — no simulation required.
//!
//! The paper's performance claims rest on micro-architectural invariants:
//! occupancy bounded by register/shared-memory limits (eq. 6), sector-level
//! memory traffic, Tensor-Core work proportional to the non-zero blocks. A
//! lowering site that silently violates one of them (shared memory over the
//! SM budget, HMMA counts that could not have computed `nnz x N`,
//! sub-compulsory DRAM traffic) corrupts every downstream comparison. This
//! crate makes those invariants machine-checked:
//!
//! - [`verify_trace`] lints a lowered [`KernelTrace`](dtc_sim::KernelTrace)
//!   against structural invariants, the SM resource limits of the target
//!   [`Device`](dtc_sim::Device), conservation laws of the problem
//!   instance, and cost-table coverage;
//! - [`verify_report`] additionally checks a finished
//!   [`SimReport`](dtc_sim::SimReport) against speed-of-light bounds and
//!   counter identities;
//! - [`catalog`] lists every lint with its stable id and severity;
//! - [`LintReport`] aggregates a kernel x dataset sweep into the JSON
//!   artifact the `tracelint` bench bin writes and CI gates on;
//! - the [`sched`] module carries the concurrency-lint families — shard
//!   plans, the execution log, the workspace lock graph and the serving
//!   pool protocol — consumed by the `dtc-sched` model checker and the
//!   `schedcheck` bin.
//!
//! # Example
//!
//! ```
//! use dtc_sim::{Device, KernelTrace, TbWork};
//! use dtc_verify::{verify_trace, Severity, TraceCase};
//!
//! let device = Device::rtx4090();
//! let mut trace = KernelTrace::new(6, 8);
//! trace.push(TbWork { hmma_ops: 4.0, hmma_count: 8.0, ..TbWork::default() });
//! let diags = verify_trace(&TraceCase::new("example", &device, &trace));
//! assert!(diags.iter().all(|d| d.severity < Severity::Error));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod conservation;
mod coverage;
mod diag;
pub mod docs;
mod report;
mod resources;
pub mod sched;
mod sol;
mod structural;

pub use case::{ProblemSpec, TraceCase};
pub use diag::{catalog, Diagnostic, LintId, LintInfo, Location, Severity};
pub use docs::{all_lints, explain_lint, lints_markdown, LintDoc};
pub use report::{CaseResult, LintReport};
pub use sched::{
    sched_catalog, verify_exec_log, verify_lock_graph, verify_plan, verify_pool_events, LockGraph,
    PoolEvent, SchedCase, SchedDiagnostic, SchedLintId,
};

use std::sync::OnceLock;

/// Bumps the process-wide lint telemetry: `verify.lints.run` counts lint
/// passes executed, `verify.lints.violations` counts diagnostics produced.
fn lint_telemetry(passes: usize, violations: usize) {
    static RUN: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static VIOLATIONS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    RUN.get_or_init(|| dtc_telemetry::counter("verify.lints.run")).add(passes as u64);
    VIOLATIONS
        .get_or_init(|| dtc_telemetry::counter("verify.lints.violations"))
        .add(violations as u64);
}

/// Statically analyzes one lowered trace: structural invariants, resource
/// legality (eq. 6), conservation laws and cost-table coverage. Returns
/// every diagnostic found; an empty vector means the trace is clean.
///
/// Conservation lints need [`TraceCase::problem`]; the `cp.async` gating
/// lint needs [`TraceCase::sdb_enabled`]. Without them those passes are
/// skipped, never failed.
pub fn verify_trace(case: &TraceCase) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut passes = structural::run(case, &mut diags);
    passes += resources::run(case, &mut diags);
    passes += conservation::run(case, &mut diags);
    passes += coverage::run(case, &mut diags);
    lint_telemetry(passes, diags.len());
    diags
}

/// Checks a finished simulation report against the speed-of-light bounds
/// of the device (Tensor-Core and DRAM) and the counter identities tying
/// the report back to its trace.
pub fn verify_report(case: &TraceCase, report: &dtc_sim::SimReport) -> Vec<Diagnostic> {
    let (passes, diags) = sol::run(case, report);
    lint_telemetry(passes, diags.len());
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_sim::occupancy::KernelResources;
    use dtc_sim::{simulate, Device, KernelTrace, SectorRun, SectorStream, SimOptions, TbWork};

    fn clean_trace() -> KernelTrace {
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources::dtc_spmm());
        for i in 0..32 {
            trace.push(TbWork {
                hmma_ops: 16.0,
                hmma_count: 32.0,
                alu_ops: 8.0,
                lsu_a_sectors: 20.0,
                lsu_b_sectors: 64.0,
                iters: 4.0,
                overlap_a_fetch: true,
                b_stream: ((i * 16)..(i * 16 + 16)).collect(),
                ..TbWork::default()
            });
        }
        trace
    }

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.severity == Severity::Error).collect()
    }

    fn has_lint(diags: &[Diagnostic], lint: LintId) -> bool {
        diags.iter().any(|d| d.lint == lint)
    }

    #[test]
    fn clean_trace_has_no_errors() {
        let device = Device::rtx4090();
        let trace = clean_trace();
        let case = TraceCase::new("test", &device, &trace).with_sdb(true);
        let diags = verify_trace(&case);
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn zero_occupancy_is_a_hard_violation() {
        let device = Device::rtx4090();
        let mut trace = clean_trace();
        trace.occupancy = 0;
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert!(has_lint(&diags, LintId::OccupancyZero));
        assert!(has_lint(&diags, LintId::OccupancyEq6));
    }

    #[test]
    fn warp_slot_overflow_is_caught() {
        let device = Device::rtx4090();
        // 8 blocks x 8 warps = 64 > 48 Ada warp slots.
        let trace = KernelTrace::new(8, 8);
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert!(has_lint(&diags, LintId::WarpSlots), "{diags:?}");
    }

    #[test]
    fn smem_overflow_is_caught() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 40,
            shared_memory_per_block: 48 * 1024, // 6 x 48K >> 100K
        });
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert!(has_lint(&diags, LintId::SmemCapacity), "{diags:?}");
        assert!(has_lint(&diags, LintId::OccupancyEq6));
    }

    #[test]
    fn non_canonical_stream_is_caught() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources::dtc_spmm());
        let bad = SectorStream::from_runs(vec![
            SectorRun { start: 0, len: 4 },
            SectorRun { start: 4, len: 4 }, // mergeable with the previous
            SectorRun { start: 100, len: 0 }, // empty
        ]);
        trace.push(TbWork { hmma_ops: 1.0, b_stream: bad, ..TbWork::default() });
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert_eq!(
            diags.iter().filter(|d| d.lint == LintId::StreamNonCanonical).count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn missing_resources_is_only_info() {
        let device = Device::rtx4090();
        let trace = KernelTrace::new(6, 8);
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert!(has_lint(&diags, LintId::ResourcesMissing));
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn conservation_catches_zeroed_hmma() {
        let device = Device::rtx4090();
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources::dtc_spmm());
        // Claims to solve a 1000-nnz problem with no compute at all.
        trace.push(TbWork { lsu_a_sectors: 1000.0, lsu_b_sectors: 1000.0, ..TbWork::default() });
        let problem = ProblemSpec { rows: 100, cols: 100, nnz: 1000, n: 64, b_rows_touched: 90 };
        let diags = verify_trace(&TraceCase::new("test", &device, &trace).with_problem(problem));
        assert!(has_lint(&diags, LintId::MacsInsufficient), "{diags:?}");
    }

    #[test]
    fn cp_async_requires_sdb() {
        let device = Device::rtx4090();
        let trace = clean_trace(); // every block claims overlap_a_fetch
        let diags = verify_trace(&TraceCase::new("test", &device, &trace).with_sdb(false));
        assert!(has_lint(&diags, LintId::CpAsyncGating), "{diags:?}");
        let diags = verify_trace(&TraceCase::new("test", &device, &trace).with_sdb(true));
        assert!(!has_lint(&diags, LintId::CpAsyncGating));
    }

    #[test]
    fn broken_cost_table_is_caught() {
        let mut device = Device::rtx4090();
        device.tc_hmma_per_cycle = 0.0;
        let trace = clean_trace();
        let diags = verify_trace(&TraceCase::new("test", &device, &trace));
        assert!(has_lint(&diags, LintId::CostTableCoverage), "{diags:?}");
    }

    #[test]
    fn report_of_clean_simulation_is_clean() {
        let device = Device::rtx4090();
        let trace = clean_trace();
        let report = simulate(&device, &trace, &SimOptions::default());
        let case = TraceCase::new("test", &device, &trace);
        let diags = verify_report(&case, &report);
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn impossible_report_trips_speed_of_light() {
        let device = Device::rtx4090();
        let trace = clean_trace();
        let mut report = simulate(&device, &trace, &SimOptions::default());
        report.cycles = 1e-3; // faster than the TC pipes allow
        let case = TraceCase::new("test", &device, &trace);
        let diags = verify_report(&case, &report);
        assert!(has_lint(&diags, LintId::SolTensorCore), "{diags:?}");
        assert!(has_lint(&diags, LintId::SolDram));
    }

    #[test]
    fn telemetry_counters_accumulate() {
        let device = Device::rtx4090();
        let trace = clean_trace();
        let before = dtc_telemetry::snapshot();
        verify_trace(&TraceCase::new("test", &device, &trace));
        let after = dtc_telemetry::snapshot();
        let runs = |s: &dtc_telemetry::MetricsSnapshot| s.counter("verify.lints.run").unwrap_or(0);
        assert!(runs(&after) > runs(&before));
    }
}
