//! Aggregated lint results over a kernel x dataset sweep, serialized
//! through the workspace's shared JSON module ([`dtc_telemetry::json`]).

use crate::diag::{Diagnostic, Severity};
use dtc_telemetry::json::Json;

/// The lint results of one `(kernel, dataset)` case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Kernel name.
    pub kernel: String,
    /// Dataset (matrix) name.
    pub dataset: String,
    /// Thread blocks in the analyzed trace.
    pub num_tbs: usize,
    /// Interned duration classes in the analyzed trace.
    pub num_classes: usize,
    /// Every diagnostic the lints produced for this case.
    pub diagnostics: Vec<Diagnostic>,
}

/// A full sweep report: one entry per analyzed case.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Device name the sweep targeted.
    pub device: String,
    /// Per-case results, in sweep order.
    pub cases: Vec<CaseResult>,
}

impl LintReport {
    /// An empty report for the named device.
    pub fn new(device: impl Into<String>) -> Self {
        LintReport { device: device.into(), cases: Vec::new() }
    }

    /// Total diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.cases.iter().flat_map(|c| &c.diagnostics).filter(|d| d.severity == severity).count()
    }

    /// Whether any error-severity diagnostic was produced (the CI gate).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Serializes the report as pretty-printed JSON (byte-stable: same
    /// report, same bytes).
    pub fn to_json(&self) -> String {
        let cases = self
            .cases
            .iter()
            .map(|case| {
                let diags = case.diagnostics.iter().map(diagnostic_json).collect();
                Json::obj(vec![
                    ("kernel", Json::str(&case.kernel)),
                    ("dataset", Json::str(&case.dataset)),
                    ("num_tbs", Json::usize(case.num_tbs)),
                    ("num_classes", Json::usize(case.num_classes)),
                    ("diagnostics", Json::arr(diags)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("device", Json::str(&self.device)),
            ("num_cases", Json::usize(self.cases.len())),
            ("errors", Json::usize(self.count(Severity::Error))),
            ("warnings", Json::usize(self.count(Severity::Warning))),
            ("infos", Json::usize(self.count(Severity::Info))),
            ("cases", Json::arr(cases)),
        ])
        .render()
    }
}

/// One diagnostic as a single-line JSON object (optional location fields
/// are omitted, not null).
fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut fields =
        vec![("lint", Json::str(d.lint.as_str())), ("severity", Json::str(d.severity.as_str()))];
    if let Some(c) = d.location.class {
        fields.push(("class", Json::usize(c)));
    }
    if let Some(t) = d.location.tb {
        fields.push(("tb", Json::usize(t)));
    }
    fields.push(("message", Json::str(&d.message)));
    Json::obj_inline(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintId, Location};

    #[test]
    fn json_shape_and_escaping() {
        let mut report = LintReport::new("RTX4090");
        report.cases.push(CaseResult {
            kernel: "DTC-SpMM".into(),
            dataset: "web-\"quoted\"".into(),
            num_tbs: 7,
            num_classes: 3,
            diagnostics: vec![Diagnostic::new(
                LintId::WarpSlots,
                Location::tb(2),
                "48 < 64".into(),
            )],
        });
        let json = report.to_json();
        assert!(json.contains("\"lint\": \"warp-slots\""));
        assert!(json.contains("\"tb\": 2"));
        assert!(json.contains("web-\\\"quoted\\\""));
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Warning), 0);
    }

    /// Pins the exact serialized bytes, so the shared-serializer port (and
    /// any future change to it) cannot silently reshape TRACELINT.json.
    #[test]
    fn json_bytes_pinned() {
        let mut report = LintReport::new("RTX4090");
        report.cases.push(CaseResult {
            kernel: "DTC-SpMM".into(),
            dataset: "dense-diag".into(),
            num_tbs: 7,
            num_classes: 3,
            diagnostics: vec![Diagnostic::new(
                LintId::WarpSlots,
                Location::tb(2),
                "48 < 64".into(),
            )],
        });
        let expect = "{\n\
                      \x20\x20\"device\": \"RTX4090\",\n\
                      \x20\x20\"num_cases\": 1,\n\
                      \x20\x20\"errors\": 1,\n\
                      \x20\x20\"warnings\": 0,\n\
                      \x20\x20\"infos\": 0,\n\
                      \x20\x20\"cases\": [\n\
                      \x20\x20\x20\x20{\n\
                      \x20\x20\x20\x20\x20\x20\"kernel\": \"DTC-SpMM\",\n\
                      \x20\x20\x20\x20\x20\x20\"dataset\": \"dense-diag\",\n\
                      \x20\x20\x20\x20\x20\x20\"num_tbs\": 7,\n\
                      \x20\x20\x20\x20\x20\x20\"num_classes\": 3,\n\
                      \x20\x20\x20\x20\x20\x20\"diagnostics\": [\n\
                      \x20\x20\x20\x20\x20\x20\x20\x20{\"lint\": \"warp-slots\", \
                      \"severity\": \"error\", \"tb\": 2, \"message\": \"48 < 64\"}\n\
                      \x20\x20\x20\x20\x20\x20]\n\
                      \x20\x20\x20\x20}\n\
                      \x20\x20]\n\
                      }\n";
        assert_eq!(report.to_json(), expect);
    }

    #[test]
    fn empty_report_has_no_errors() {
        assert!(!LintReport::new("RTX4090").has_errors());
    }
}
