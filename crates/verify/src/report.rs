//! Aggregated lint results over a kernel x dataset sweep, with a
//! hand-rolled JSON serialization (the workspace is offline — no serde).

use crate::diag::{Diagnostic, Severity};
use std::fmt::Write as _;

/// The lint results of one `(kernel, dataset)` case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Kernel name.
    pub kernel: String,
    /// Dataset (matrix) name.
    pub dataset: String,
    /// Thread blocks in the analyzed trace.
    pub num_tbs: usize,
    /// Interned duration classes in the analyzed trace.
    pub num_classes: usize,
    /// Every diagnostic the lints produced for this case.
    pub diagnostics: Vec<Diagnostic>,
}

/// A full sweep report: one entry per analyzed case.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Device name the sweep targeted.
    pub device: String,
    /// Per-case results, in sweep order.
    pub cases: Vec<CaseResult>,
}

impl LintReport {
    /// An empty report for the named device.
    pub fn new(device: impl Into<String>) -> Self {
        LintReport { device: device.into(), cases: Vec::new() }
    }

    /// Total diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.cases.iter().flat_map(|c| &c.diagnostics).filter(|d| d.severity == severity).count()
    }

    /// Whether any error-severity diagnostic was produced (the CI gate).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"device\": \"{}\",", escape(&self.device));
        let _ = writeln!(out, "  \"num_cases\": {},", self.cases.len());
        let _ = writeln!(out, "  \"errors\": {},", self.count(Severity::Error));
        let _ = writeln!(out, "  \"warnings\": {},", self.count(Severity::Warning));
        let _ = writeln!(out, "  \"infos\": {},", self.count(Severity::Info));
        out.push_str("  \"cases\": [\n");
        for (i, case) in self.cases.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"kernel\": \"{}\",", escape(&case.kernel));
            let _ = writeln!(out, "      \"dataset\": \"{}\",", escape(&case.dataset));
            let _ = writeln!(out, "      \"num_tbs\": {},", case.num_tbs);
            let _ = writeln!(out, "      \"num_classes\": {},", case.num_classes);
            out.push_str("      \"diagnostics\": [\n");
            for (j, d) in case.diagnostics.iter().enumerate() {
                out.push_str("        {");
                let _ = write!(out, "\"lint\": \"{}\", ", d.lint.as_str());
                let _ = write!(out, "\"severity\": \"{}\", ", d.severity.as_str());
                if let Some(c) = d.location.class {
                    let _ = write!(out, "\"class\": {c}, ");
                }
                if let Some(t) = d.location.tb {
                    let _ = write!(out, "\"tb\": {t}, ");
                }
                let _ = write!(out, "\"message\": \"{}\"", escape(&d.message));
                out.push('}');
                out.push_str(if j + 1 < case.diagnostics.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.cases.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintId, Location};

    #[test]
    fn json_shape_and_escaping() {
        let mut report = LintReport::new("RTX4090");
        report.cases.push(CaseResult {
            kernel: "DTC-SpMM".into(),
            dataset: "web-\"quoted\"".into(),
            num_tbs: 7,
            num_classes: 3,
            diagnostics: vec![Diagnostic::new(
                LintId::WarpSlots,
                Location::tb(2),
                "48 < 64".into(),
            )],
        });
        let json = report.to_json();
        assert!(json.contains("\"lint\": \"warp-slots\""));
        assert!(json.contains("\"tb\": 2"));
        assert!(json.contains("web-\\\"quoted\\\""));
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Warning), 0);
    }

    #[test]
    fn empty_report_has_no_errors() {
        assert!(!LintReport::new("RTX4090").has_errors());
    }
}
