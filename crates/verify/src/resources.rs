//! Resource legality: the trace's claimed occupancy against the SM limits
//! of the target device — warp slots, resident-block slots, shared-memory
//! capacity, the register file, and the paper's eq. 6 occupancy rule.

use crate::case::TraceCase;
use crate::diag::{Diagnostic, LintId, Location};
use dtc_sim::occupancy::{occupancy, SmResources};

fn round_up(value: u32, granularity: u32) -> u32 {
    let g = granularity.max(1);
    value.div_ceil(g) * g
}

/// Runs the resource lints; returns the number of lint passes executed.
pub(crate) fn run(case: &TraceCase, diags: &mut Vec<Diagnostic>) -> usize {
    let trace = case.trace;
    let sm = SmResources::for_device(case.device);
    let occ = trace.occupancy as u32;
    let warps = trace.warps_per_tb as u32;
    let mut passes = 0;

    // warp-slots: needs only the launch configuration.
    passes += 1;
    if occ.saturating_mul(warps) > sm.max_warps {
        diags.push(Diagnostic::new(
            LintId::WarpSlots,
            Location::TRACE,
            format!(
                "occupancy {occ} x {warps} warps = {} resident warps exceeds the SM's {} warp slots",
                occ * warps,
                sm.max_warps
            ),
        ));
    }

    // block-slots.
    passes += 1;
    if occ > sm.max_blocks {
        diags.push(Diagnostic::new(
            LintId::BlockSlots,
            Location::TRACE,
            format!("occupancy {occ} exceeds the SM's {} resident-block slots", sm.max_blocks),
        ));
    }

    let Some(res) = trace.resources() else {
        passes += 1;
        diags.push(Diagnostic::new(
            LintId::ResourcesMissing,
            Location::TRACE,
            "no KernelResources attached: register/smem legality and eq. 6 unchecked".into(),
        ));
        return passes;
    };

    // warps-mismatch: the attached resources must describe this launch.
    passes += 1;
    if res.warps_per_block != warps {
        diags.push(Diagnostic::new(
            LintId::WarpsMismatch,
            Location::TRACE,
            format!(
                "attached resources declare {} warps per block but the trace launches {warps}",
                res.warps_per_block
            ),
        ));
    }

    // smem-capacity: resident blocks' allocated shared memory.
    passes += 1;
    let smem_per_block = round_up(res.shared_memory_per_block, sm.smem_granularity);
    let smem_resident = occ.saturating_mul(smem_per_block);
    if smem_resident > sm.shared_memory {
        diags.push(Diagnostic::new(
            LintId::SmemCapacity,
            Location::TRACE,
            format!(
                "occupancy {occ} x {smem_per_block} B shared memory = {smem_resident} B exceeds the SM's {} B",
                sm.shared_memory
            ),
        ));
    }

    // register-file: resident warps' allocated registers.
    passes += 1;
    let regs_per_warp = round_up(res.registers_per_thread * 32, sm.register_granularity);
    let regs_resident = occ.saturating_mul(res.warps_per_block).saturating_mul(regs_per_warp);
    if regs_resident > sm.registers {
        diags.push(Diagnostic::new(
            LintId::RegisterFile,
            Location::TRACE,
            format!(
                "occupancy {occ} x {} warps x {regs_per_warp} registers = {regs_resident} exceeds the SM's {}",
                res.warps_per_block, sm.registers
            ),
        ));
    }

    // occupancy-eq6: the claimed occupancy against the derived one.
    passes += 1;
    let derived = occupancy(&sm, res);
    if occ != derived {
        let relation = if occ > derived { "exceeds" } else { "undercuts" };
        diags.push(Diagnostic::new(
            LintId::OccupancyEq6,
            Location::TRACE,
            format!(
                "trace occupancy {occ} {relation} the eq. 6 occupancy {derived} for the attached resources on {}",
                case.device.name
            ),
        ));
    }

    passes
}
