//! Concurrency lints: structural analysis of [`ShardPlan`]s, the dtc-par
//! execution log, the workspace's extracted lock graph, and the
//! `dtc-serve` engine-pool protocol.
//!
//! This is the `SchedCase` analogue of [`TraceCase`](crate::TraceCase):
//! where the trace lints check what a kernel *did* against the device
//! model, the sched lints check what the concurrency layer *may do*
//! against the determinism contract — every plan must cover its index
//! space exactly once, nested parallel sections must run serial, the
//! workspace's lock-acquisition graph must stay acyclic, and the serving
//! pool must insert a slot before publishing its engine and invalidate
//! the lossy front tier in the same critical section as an eviction.
//!
//! Four entry points, one per evidence source:
//!
//! - [`verify_plan`] — structural lints over a [`ShardPlan`] (+ the
//!   caller's weights, when the plan was weight-cut);
//! - [`verify_exec_log`] — lints over drained
//!   [`ExecRecord`](dtc_par::ExecRecord)s (nested-parallelism legality);
//! - [`verify_lock_graph`] — lock-order audit of a [`LockGraph`];
//! - [`verify_pool_events`] — protocol lints over a [`PoolEvent`] log.
//!
//! The schedule-space model checker in `dtc-sched` emits its own findings
//! (bit-divergence between schedules, double-written slots, arena
//! aliasing, steady-state allocations) as [`SchedDiagnostic`]s under the
//! `sched-*` ids of this registry, so one report format covers both the
//! static lints and the explored-schedule assertions.

use crate::diag::Severity;
use dtc_par::{ExecRecord, ShardPlan};
use std::collections::HashMap;
use std::fmt;

/// Stable identity of one concurrency lint.
///
/// Ids are kebab-case and pinned by `tests/lint_ids.rs`; the `plan-*`,
/// `exec-*`, `lock-*` and `pool-*` families are produced by the
/// `verify_*` functions in this module, the `sched-*` family by the
/// model checker in `dtc-sched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedLintId {
    // Structural invariants of a ShardPlan.
    /// Chunks must tile `0..n` contiguously: no gap, no missing prefix or
    /// suffix.
    PlanChunkCoverage,
    /// Chunks must be non-empty and pairwise disjoint (no overlap).
    PlanChunkDisjoint,
    /// Bands must tile `0..num_chunks` contiguously and be non-empty.
    PlanBandCoverage,
    /// Summing the caller's weights chunk-by-chunk must reproduce the
    /// total exactly (nothing dropped, nothing double-counted).
    PlanWeightConservation,
    /// Weighted cut points must be strictly increasing and no band may
    /// overshoot its weight quantile by more than one chunk.
    PlanQuantileMonotonic,
    // Execution-log invariants.
    /// An invocation entered from inside a worker must run serial
    /// (`in_worker` ⇒ exactly one band).
    ExecNestedParallelism,
    // Lock-order audit.
    /// A lock class must never be acquired while already held.
    LockSelfEdge,
    /// An edge must reference registered lock classes.
    LockUnknownClass,
    /// The acquired-while-holding relation must be acyclic.
    LockOrderCycle,
    // Serving-pool protocol.
    /// A pool slot must be inserted into its bucket before its engine is
    /// published (and never removed without having been inserted).
    PoolPublishOrder,
    /// Two live slots share a primary hash (legal on hash collision, but
    /// worth a look).
    PoolDoubleInsert,
    /// Evicting or removing a slot must invalidate the lossy front tier
    /// in the same critical section (the immediately following event).
    PoolEvictFrontInvalidate,
    // Model-checker findings (emitted by dtc-sched).
    /// A result slot was written zero or multiple times on an explored
    /// schedule.
    SchedSlotExclusivity,
    /// Two explored schedules produced bitwise-different outputs.
    SchedOutputDivergence,
    /// An explored schedule did not execute every chunk exactly once.
    SchedChunkCoverage,
    /// A leased arena buffer carried state across chunks (aliasing).
    SchedArenaAliasing,
    /// A steady-state replay performed heap allocations.
    SchedAllocSteadyState,
}

impl SchedLintId {
    /// Every concurrency lint, in report order.
    pub const ALL: [SchedLintId; 17] = [
        SchedLintId::PlanChunkCoverage,
        SchedLintId::PlanChunkDisjoint,
        SchedLintId::PlanBandCoverage,
        SchedLintId::PlanWeightConservation,
        SchedLintId::PlanQuantileMonotonic,
        SchedLintId::ExecNestedParallelism,
        SchedLintId::LockSelfEdge,
        SchedLintId::LockUnknownClass,
        SchedLintId::LockOrderCycle,
        SchedLintId::PoolPublishOrder,
        SchedLintId::PoolDoubleInsert,
        SchedLintId::PoolEvictFrontInvalidate,
        SchedLintId::SchedSlotExclusivity,
        SchedLintId::SchedOutputDivergence,
        SchedLintId::SchedChunkCoverage,
        SchedLintId::SchedArenaAliasing,
        SchedLintId::SchedAllocSteadyState,
    ];

    /// The stable kebab-case name (what CI and reports key on).
    pub fn as_str(self) -> &'static str {
        match self {
            SchedLintId::PlanChunkCoverage => "plan-chunk-coverage",
            SchedLintId::PlanChunkDisjoint => "plan-chunk-disjoint",
            SchedLintId::PlanBandCoverage => "plan-band-coverage",
            SchedLintId::PlanWeightConservation => "plan-weight-conservation",
            SchedLintId::PlanQuantileMonotonic => "plan-quantile-monotonic",
            SchedLintId::ExecNestedParallelism => "exec-nested-parallelism",
            SchedLintId::LockSelfEdge => "lock-self-edge",
            SchedLintId::LockUnknownClass => "lock-unknown-class",
            SchedLintId::LockOrderCycle => "lock-order-cycle",
            SchedLintId::PoolPublishOrder => "pool-publish-order",
            SchedLintId::PoolDoubleInsert => "pool-double-insert",
            SchedLintId::PoolEvictFrontInvalidate => "pool-evict-front-invalidate",
            SchedLintId::SchedSlotExclusivity => "sched-slot-exclusivity",
            SchedLintId::SchedOutputDivergence => "sched-output-divergence",
            SchedLintId::SchedChunkCoverage => "sched-chunk-coverage",
            SchedLintId::SchedArenaAliasing => "sched-arena-aliasing",
            SchedLintId::SchedAllocSteadyState => "sched-alloc-steady-state",
        }
    }

    /// The lint's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            SchedLintId::PoolDoubleInsert => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description for the catalog listing.
    pub fn summary(self) -> &'static str {
        match self {
            SchedLintId::PlanChunkCoverage => "chunks must tile 0..n contiguously",
            SchedLintId::PlanChunkDisjoint => "chunks must be non-empty and non-overlapping",
            SchedLintId::PlanBandCoverage => "bands must tile the chunk list contiguously",
            SchedLintId::PlanWeightConservation => {
                "per-chunk weight sums must reproduce the caller's total exactly"
            }
            SchedLintId::PlanQuantileMonotonic => {
                "weighted cuts must be monotone; a band may overshoot its quantile by at most one chunk"
            }
            SchedLintId::ExecNestedParallelism => {
                "an invocation entered from a worker must run serial (one band)"
            }
            SchedLintId::LockSelfEdge => "a lock class must never be acquired while already held",
            SchedLintId::LockUnknownClass => "lock edges must reference registered classes",
            SchedLintId::LockOrderCycle => "the acquired-while-holding relation must be acyclic",
            SchedLintId::PoolPublishOrder => {
                "a pool slot must be inserted before its engine is published"
            }
            SchedLintId::PoolDoubleInsert => "two live pool slots share a primary hash",
            SchedLintId::PoolEvictFrontInvalidate => {
                "evicting a slot must invalidate the front tier in the same critical section"
            }
            SchedLintId::SchedSlotExclusivity => {
                "every result slot must be written exactly once per schedule"
            }
            SchedLintId::SchedOutputDivergence => {
                "all explored schedules must produce bitwise-identical outputs"
            }
            SchedLintId::SchedChunkCoverage => {
                "every explored schedule must execute each chunk exactly once"
            }
            SchedLintId::SchedArenaAliasing => {
                "leased arena buffers must come back empty (no cross-chunk state)"
            }
            SchedLintId::SchedAllocSteadyState => {
                "steady-state schedule replay must perform zero heap allocations"
            }
        }
    }
}

/// A catalog entry: concurrency lint identity plus severity and summary.
#[derive(Debug, Clone, Copy)]
pub struct SchedLintInfo {
    /// The lint.
    pub id: SchedLintId,
    /// Its fixed severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// The full concurrency-lint catalog, in report order.
pub fn sched_catalog() -> Vec<SchedLintInfo> {
    SchedLintId::ALL
        .iter()
        .map(|&id| SchedLintInfo { id, severity: id.severity(), summary: id.summary() })
        .collect()
}

/// Where a concurrency finding points: one structural element of the case
/// (a band, chunk, item, event or edge index), or the case as a whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedLocation {
    /// What `index` indexes: `"case"`, `"band"`, `"chunk"`, `"item"`,
    /// `"record"`, `"event"` or `"edge"`.
    pub kind: &'static str,
    /// The index, when the finding is element-specific.
    pub index: Option<usize>,
}

impl SchedLocation {
    /// A finding about the case as a whole.
    pub const CASE: SchedLocation = SchedLocation { kind: "case", index: None };

    /// A finding about worker band `w`.
    pub fn band(w: usize) -> Self {
        SchedLocation { kind: "band", index: Some(w) }
    }

    /// A finding about chunk `c`.
    pub fn chunk(c: usize) -> Self {
        SchedLocation { kind: "chunk", index: Some(c) }
    }

    /// A finding about item (result slot) `i`.
    pub fn item(i: usize) -> Self {
        SchedLocation { kind: "item", index: Some(i) }
    }

    /// A finding about execution-log record `r`.
    pub fn record(r: usize) -> Self {
        SchedLocation { kind: "record", index: Some(r) }
    }

    /// A finding about pool event `e` (log order).
    pub fn event(e: usize) -> Self {
        SchedLocation { kind: "event", index: Some(e) }
    }

    /// A finding about lock-graph edge `e` (registration order).
    pub fn edge(e: usize) -> Self {
        SchedLocation { kind: "edge", index: Some(e) }
    }
}

impl fmt::Display for SchedLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{} {i}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

/// One concurrency finding: lint, severity, location and a message with
/// the offending values.
#[derive(Debug, Clone)]
pub struct SchedDiagnostic {
    /// Which lint fired.
    pub lint: SchedLintId,
    /// The lint's severity (always `lint.severity()`).
    pub severity: Severity,
    /// Where it fired.
    pub location: SchedLocation,
    /// Human-readable explanation including the offending values.
    pub message: String,
}

impl SchedDiagnostic {
    /// Builds a diagnostic with the lint's fixed severity.
    pub fn new(lint: SchedLintId, location: SchedLocation, message: String) -> Self {
        SchedDiagnostic { lint, severity: lint.severity(), location, message }
    }
}

impl fmt::Display for SchedDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] @ {}: {}",
            self.severity.as_str(),
            self.lint.as_str(),
            self.location,
            self.message
        )
    }
}

/// At most this many diagnostics per lint before the rest are folded into
/// one summary line (mirrors the trace lints' cap).
const MAX_PER_LINT: usize = 16;

fn capped(diags: &mut Vec<SchedDiagnostic>, count: usize, diag: SchedDiagnostic) -> usize {
    if count < MAX_PER_LINT {
        diags.push(diag);
    } else if count == MAX_PER_LINT {
        let lint = diag.lint;
        diags.push(SchedDiagnostic::new(
            lint,
            SchedLocation::CASE,
            format!("further {} findings suppressed after the first {MAX_PER_LINT}", lint.as_str()),
        ));
    }
    count + 1
}

// ---------------------------------------------------------------------------
// Plan lints
// ---------------------------------------------------------------------------

/// One shard plan under analysis, with the context the planner saw.
///
/// `weights` are the caller's per-item cost estimates for a
/// [`ShardPlan::weighted`] plan; without them the conservation and
/// quantile lints are skipped, never failed (mirroring how the trace
/// lints treat a missing [`ProblemSpec`](crate::ProblemSpec)).
#[derive(Debug, Clone, Copy)]
pub struct SchedCase<'a> {
    /// Case name (plan shape), carried into reports.
    pub name: &'a str,
    /// The plan under analysis.
    pub plan: &'a ShardPlan,
    /// The caller weights the plan was cut from, if it was weight-cut.
    pub weights: Option<&'a [u64]>,
}

impl<'a> SchedCase<'a> {
    /// A case with no planner context attached.
    pub fn new(name: &'a str, plan: &'a ShardPlan) -> Self {
        SchedCase { name, plan, weights: None }
    }

    /// Attaches the caller weights the plan was cut from.
    pub fn with_weights(mut self, weights: &'a [u64]) -> Self {
        self.weights = Some(weights);
        self
    }
}

/// Structurally lints one [`ShardPlan`]: chunk coverage and disjointness,
/// band coverage, and (with weights attached) weight conservation and
/// quantile monotonicity. Returns every diagnostic found.
pub fn verify_plan(case: &SchedCase) -> Vec<SchedDiagnostic> {
    let mut diags = Vec::new();
    let plan = case.plan;
    let chunks = plan.chunk_ranges();
    let bands = plan.band_ranges();
    let n = plan.len();
    let mut passes = 0usize;

    // plan-chunk-disjoint: every chunk non-empty, ends after it starts, and
    // starts at or after the previous chunk's end.
    passes += 1;
    let mut count = 0;
    for (c, &(s, e)) in chunks.iter().enumerate() {
        if e <= s {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::PlanChunkDisjoint,
                    SchedLocation::chunk(c),
                    format!("empty or inverted chunk range {s}..{e}"),
                ),
            );
        }
        if c > 0 && s < chunks[c - 1].1 {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::PlanChunkDisjoint,
                    SchedLocation::chunk(c),
                    format!("chunk {s}..{e} overlaps previous chunk ending at {}", chunks[c - 1].1),
                ),
            );
        }
    }

    // plan-chunk-coverage: the chunk list tiles 0..n with no gap.
    passes += 1;
    let mut count = 0;
    let mut expect = 0usize;
    for (c, &(s, e)) in chunks.iter().enumerate() {
        if s > expect {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::PlanChunkCoverage,
                    SchedLocation::chunk(c),
                    format!("gap: items {expect}..{s} are covered by no chunk"),
                ),
            );
        }
        expect = expect.max(e);
    }
    if expect != n || (n > 0 && chunks.is_empty()) {
        diags.push(SchedDiagnostic::new(
            SchedLintId::PlanChunkCoverage,
            SchedLocation::CASE,
            format!("chunks cover 0..{expect} but the plan holds {n} items"),
        ));
    }

    // plan-band-coverage: bands tile 0..chunks.len() contiguously.
    passes += 1;
    let mut count = 0;
    let mut cexpect = 0usize;
    for (w, &(cb, ce)) in bands.iter().enumerate() {
        if ce <= cb {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::PlanBandCoverage,
                    SchedLocation::band(w),
                    format!("empty or inverted band range {cb}..{ce}"),
                ),
            );
        }
        if cb != cexpect {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::PlanBandCoverage,
                    SchedLocation::band(w),
                    format!("band starts at chunk {cb}, expected {cexpect} (gap or overlap)"),
                ),
            );
        }
        cexpect = cexpect.max(ce);
    }
    if cexpect != chunks.len() {
        diags.push(SchedDiagnostic::new(
            SchedLintId::PlanBandCoverage,
            SchedLocation::CASE,
            format!("bands cover chunks 0..{cexpect} of {}", chunks.len()),
        ));
    }

    if let Some(weights) = case.weights {
        // The planner's item weight is the caller weight + 1 (zero-weight
        // runs stay splittable); both weight lints mirror that.
        if weights.len() != n {
            diags.push(SchedDiagnostic::new(
                SchedLintId::PlanWeightConservation,
                SchedLocation::CASE,
                format!("{} caller weights for a {n}-item plan", weights.len()),
            ));
        } else {
            let item_w = |i: usize| weights[i] as u128 + 1;
            let total: u128 = (0..n).map(item_w).sum();
            let chunk_w: Vec<u128> =
                chunks.iter().map(|&(s, e)| (s.min(n)..e.min(n)).map(item_w).sum()).collect();

            // plan-weight-conservation: chunk sums reproduce the total.
            passes += 1;
            let planned: u128 = chunk_w.iter().sum();
            if planned != total {
                diags.push(SchedDiagnostic::new(
                    SchedLintId::PlanWeightConservation,
                    SchedLocation::CASE,
                    format!(
                        "chunk weight sum {planned} != caller total {total} \
                         (items dropped or double-counted)"
                    ),
                ));
            }

            // plan-quantile-monotonic: cut positions strictly increase and
            // no band overshoots its equal-weight quantile by more than the
            // planner's guarantee (one chunk).
            passes += 1;
            let mut count = 0;
            for c in 1..chunks.len() {
                if chunks[c].1 <= chunks[c - 1].1 {
                    count = capped(
                        &mut diags,
                        count,
                        SchedDiagnostic::new(
                            SchedLintId::PlanQuantileMonotonic,
                            SchedLocation::chunk(c),
                            format!(
                                "chunk end {} does not increase past previous end {}",
                                chunks[c].1,
                                chunks[c - 1].1
                            ),
                        ),
                    );
                }
            }
            if !bands.is_empty() && planned == total {
                let max_chunk_w = chunk_w.iter().copied().max().unwrap_or(0);
                let quota = total / bands.len() as u128;
                for (w, &(cb, ce)) in bands.iter().enumerate() {
                    let band_w: u128 =
                        chunk_w.get(cb..ce.min(chunk_w.len())).unwrap_or(&[]).iter().sum();
                    if band_w > quota + max_chunk_w {
                        count = capped(
                            &mut diags,
                            count,
                            SchedDiagnostic::new(
                                SchedLintId::PlanQuantileMonotonic,
                                SchedLocation::band(w),
                                format!(
                                    "band weight {band_w} overshoots its quantile: quota \
                                     {quota} + one chunk ({max_chunk_w}) exceeded"
                                ),
                            ),
                        );
                    }
                }
            }
        }
    }

    crate::lint_telemetry(passes, diags.len());
    diags
}

// ---------------------------------------------------------------------------
// Execution-log lints
// ---------------------------------------------------------------------------

/// Lints a drained dtc-par execution log (see
/// [`dtc_par::set_exec_log`]): an invocation entered from inside a worker
/// must have run on exactly one band — nested parallel sections are
/// forced serial, and a multi-band nested run would mean OS threads
/// spawned from a worker (and steals racing the outer schedule).
pub fn verify_exec_log(name: &str, log: &[ExecRecord]) -> Vec<SchedDiagnostic> {
    let _ = name;
    let mut diags = Vec::new();
    let mut count = 0;
    for (r, rec) in log.iter().enumerate() {
        if rec.in_worker_at_entry && rec.bands_used > 1 {
            count = capped(
                &mut diags,
                count,
                SchedDiagnostic::new(
                    SchedLintId::ExecNestedParallelism,
                    SchedLocation::record(r),
                    format!(
                        "invocation of {} items entered from a worker ran on {} bands \
                         ({} steals); nested sections must run serial",
                        rec.n, rec.bands_used, rec.steals
                    ),
                ),
            );
        }
    }
    crate::lint_telemetry(1, diags.len());
    diags
}

// ---------------------------------------------------------------------------
// Lock-order audit
// ---------------------------------------------------------------------------

/// One registered lock class (a family of locks acquired under one
/// discipline, e.g. "every band deque" or "the pool inner mutex").
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    /// Short dotted name, e.g. `serve.pool.inner`.
    pub name: &'static str,
    /// What the class protects / how it is acquired.
    pub note: &'static str,
}

/// One acquired-while-holding edge: `to` is (or may be) acquired while a
/// lock of class `from` is held, at the named source site.
#[derive(Debug, Clone, Copy)]
pub struct LockEdge {
    /// Class index already held.
    pub from: usize,
    /// Class index acquired under it.
    pub to: usize,
    /// The source location of the nested acquisition, e.g.
    /// `serve/src/server.rs::admit`.
    pub site: &'static str,
}

/// A lock-acquisition graph extracted from the source: nodes are lock
/// classes, edges the acquired-while-holding relation. Acyclicity of this
/// graph (checked by [`verify_lock_graph`]) rules out lock-order
/// deadlocks between the registered classes.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Registered classes, in registration order.
    pub classes: Vec<LockClass>,
    /// Registered edges, in registration order.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockGraph::default()
    }

    /// Registers a lock class; returns its index for [`LockGraph::edge`].
    pub fn class(&mut self, name: &'static str, note: &'static str) -> usize {
        self.classes.push(LockClass { name, note });
        self.classes.len() - 1
    }

    /// Registers an acquired-while-holding edge.
    pub fn edge(&mut self, from: usize, to: usize, site: &'static str) {
        self.edges.push(LockEdge { from, to, site });
    }
}

/// Audits a lock graph: edges must reference registered classes, no class
/// may be re-acquired while held (self edge), and the whole
/// acquired-while-holding relation must be acyclic.
pub fn verify_lock_graph(name: &str, graph: &LockGraph) -> Vec<SchedDiagnostic> {
    let _ = name;
    let mut diags = Vec::new();
    let ncls = graph.classes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ncls];

    // lock-unknown-class / lock-self-edge, building the adjacency of the
    // well-formed edges as we go.
    for (e, edge) in graph.edges.iter().enumerate() {
        if edge.from >= ncls || edge.to >= ncls {
            diags.push(SchedDiagnostic::new(
                SchedLintId::LockUnknownClass,
                SchedLocation::edge(e),
                format!(
                    "edge {} -> {} at {} references an unregistered class ({} registered)",
                    edge.from, edge.to, edge.site, ncls
                ),
            ));
            continue;
        }
        if edge.from == edge.to {
            diags.push(SchedDiagnostic::new(
                SchedLintId::LockSelfEdge,
                SchedLocation::edge(e),
                format!(
                    "{} acquired while already held at {}",
                    graph.classes[edge.from].name, edge.site
                ),
            ));
            continue;
        }
        adj[edge.from].push(edge.to);
    }

    // lock-order-cycle: DFS three-coloring; a back edge closes a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; ncls];
    let mut path: Vec<usize> = Vec::new();
    // Iterative DFS with an explicit (node, next-child) stack.
    for root in 0..ncls {
        if color[root] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Gray;
        path.push(root);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let child = adj[node][*next];
                *next += 1;
                match color[child] {
                    Color::White => {
                        color[child] = Color::Gray;
                        path.push(child);
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        let start = path.iter().position(|&p| p == child).unwrap_or(0);
                        let cycle: Vec<&str> = path[start..]
                            .iter()
                            .chain(std::iter::once(&child))
                            .map(|&c| graph.classes[c].name)
                            .collect();
                        diags.push(SchedDiagnostic::new(
                            SchedLintId::LockOrderCycle,
                            SchedLocation::CASE,
                            format!("lock-order cycle: {}", cycle.join(" -> ")),
                        ));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                path.pop();
                stack.pop();
            }
        }
    }

    crate::lint_telemetry(3, diags.len());
    diags
}

// ---------------------------------------------------------------------------
// Serving-pool protocol lints
// ---------------------------------------------------------------------------

/// One observable event of the `dtc-serve` engine-pool protocol, keyed by
/// the slot's primary hash. The pool emits these (when event capture is
/// on) at the exact points its invariants are about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// A slot entered its bucket (under the pool lock), before any
    /// engine build runs.
    Insert {
        /// The slot key's primary hash.
        primary: u64,
    },
    /// The slot's engine finished building and was published through its
    /// `OnceLock`.
    Publish {
        /// The slot key's primary hash.
        primary: u64,
    },
    /// The slot left its bucket (eviction or failed prepare), under the
    /// pool lock.
    Remove {
        /// The slot key's primary hash.
        primary: u64,
    },
    /// The lossy front tier dropped its entry for the key, in the same
    /// critical section as the removal.
    FrontInvalidate {
        /// The slot key's primary hash.
        primary: u64,
    },
}

impl PoolEvent {
    fn primary(self) -> u64 {
        match self {
            PoolEvent::Insert { primary }
            | PoolEvent::Publish { primary }
            | PoolEvent::Remove { primary }
            | PoolEvent::FrontInvalidate { primary } => primary,
        }
    }
}

/// Lints a captured pool-event log against the slot protocol:
///
/// - every `Publish` and `Remove` must act on a slot with a live prior
///   `Insert` ([`SchedLintId::PoolPublishOrder`] — the coalescing
///   invariant: the bucket entry exists before the engine builds, so
///   concurrent requests for the key find and wait on the same cell);
/// - a `Remove` must be immediately followed by a `FrontInvalidate` for
///   the same key ([`SchedLintId::PoolEvictFrontInvalidate`] — both
///   happen in one critical section, or a stale front-tier probe could
///   resurrect an evicted slot index);
/// - two live `Insert`s for one primary are flagged as a warning
///   ([`SchedLintId::PoolDoubleInsert`]).
pub fn verify_pool_events(name: &str, events: &[PoolEvent]) -> Vec<SchedDiagnostic> {
    let _ = name;
    let mut diags = Vec::new();
    let mut live: HashMap<u64, usize> = HashMap::new();
    let mut order_count = 0;
    let mut evict_count = 0;
    for (e, &event) in events.iter().enumerate() {
        let primary = event.primary();
        match event {
            PoolEvent::Insert { .. } => {
                let slot = live.entry(primary).or_insert(0);
                *slot += 1;
                if *slot > 1 {
                    diags.push(SchedDiagnostic::new(
                        SchedLintId::PoolDoubleInsert,
                        SchedLocation::event(e),
                        format!("{} live slots share primary {primary:#018x}", *slot),
                    ));
                }
            }
            PoolEvent::Publish { .. } => {
                if live.get(&primary).copied().unwrap_or(0) == 0 {
                    order_count = capped(
                        &mut diags,
                        order_count,
                        SchedDiagnostic::new(
                            SchedLintId::PoolPublishOrder,
                            SchedLocation::event(e),
                            format!(
                                "engine for primary {primary:#018x} published before its slot \
                                 was inserted (coalescing broken)"
                            ),
                        ),
                    );
                }
            }
            PoolEvent::Remove { .. } => {
                let slot = live.entry(primary).or_insert(0);
                if *slot == 0 {
                    order_count = capped(
                        &mut diags,
                        order_count,
                        SchedDiagnostic::new(
                            SchedLintId::PoolPublishOrder,
                            SchedLocation::event(e),
                            format!("slot for primary {primary:#018x} removed but never inserted"),
                        ),
                    );
                } else {
                    *slot -= 1;
                }
                let followed = matches!(
                    events.get(e + 1),
                    Some(PoolEvent::FrontInvalidate { primary: p }) if *p == primary
                );
                if !followed {
                    evict_count = capped(
                        &mut diags,
                        evict_count,
                        SchedDiagnostic::new(
                            SchedLintId::PoolEvictFrontInvalidate,
                            SchedLocation::event(e),
                            format!(
                                "slot for primary {primary:#018x} removed without invalidating \
                                 the front tier in the same critical section"
                            ),
                        ),
                    );
                }
            }
            PoolEvent::FrontInvalidate { .. } => {}
        }
    }
    crate::lint_telemetry(3, diags.len());
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(diags: &[SchedDiagnostic], lint: SchedLintId) -> bool {
        diags.iter().any(|d| d.lint == lint)
    }

    fn errors(diags: &[SchedDiagnostic]) -> usize {
        diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    // -- plan lints: clean plans pass, each seeded bug is caught ----------

    #[test]
    fn real_plans_are_clean() {
        for threads in [1usize, 2, 5, 16] {
            for n in [0usize, 1, 7, 64, 513] {
                let even = ShardPlan::even(n, threads);
                let diags = verify_plan(&SchedCase::new("even", &even));
                assert_eq!(errors(&diags), 0, "even n={n} t={threads}: {diags:?}");

                let weights: Vec<u64> = (0..n as u64).map(|i| (i * i) % 97).collect();
                let weighted = ShardPlan::weighted(threads, &weights);
                let diags =
                    verify_plan(&SchedCase::new("weighted", &weighted).with_weights(&weights));
                assert_eq!(errors(&diags), 0, "weighted n={n} t={threads}: {diags:?}");
            }
        }
    }

    #[test]
    fn mutation_overlapping_chunk_is_caught() {
        // Chunks 0..6 and 4..10 overlap on items 4..6.
        let plan = ShardPlan::from_raw_parts(10, vec![(0, 6), (4, 10)], vec![(0, 1), (1, 2)]);
        let diags = verify_plan(&SchedCase::new("mutant", &plan));
        assert!(has(&diags, SchedLintId::PlanChunkDisjoint), "{diags:?}");
    }

    #[test]
    fn mutation_chunk_gap_is_caught() {
        // Items 4..6 are covered by no chunk.
        let plan = ShardPlan::from_raw_parts(10, vec![(0, 4), (6, 10)], vec![(0, 1), (1, 2)]);
        let diags = verify_plan(&SchedCase::new("mutant", &plan));
        assert!(has(&diags, SchedLintId::PlanChunkCoverage), "{diags:?}");
    }

    #[test]
    fn mutation_band_gap_is_caught() {
        // Band 1 skips chunk 1: it is in no worker's deque.
        let plan = ShardPlan::from_raw_parts(
            12,
            vec![(0, 3), (3, 6), (6, 9), (9, 12)],
            vec![(0, 1), (2, 4)],
        );
        let diags = verify_plan(&SchedCase::new("mutant", &plan));
        assert!(has(&diags, SchedLintId::PlanBandCoverage), "{diags:?}");
    }

    #[test]
    fn mutation_weight_drop_is_caught() {
        // Coverage holds over 0..10 but the caller says there are 12 items:
        // the plan silently dropped two items' weight.
        let plan = ShardPlan::from_raw_parts(12, vec![(0, 5), (5, 10)], vec![(0, 1), (1, 2)]);
        let weights = vec![3u64; 12];
        let diags = verify_plan(&SchedCase::new("mutant", &plan).with_weights(&weights));
        assert!(has(&diags, SchedLintId::PlanWeightConservation), "{diags:?}");
        // (the coverage lint also fires — conservation is the weight-level view)
        assert!(has(&diags, SchedLintId::PlanChunkCoverage), "{diags:?}");
    }

    #[test]
    fn mutation_lopsided_bands_are_caught() {
        // Chunks tile perfectly, but one band hoards ~all the weight:
        // coverage lints pass, the quantile lint must fire.
        let chunks: Vec<(usize, usize)> = (0..8).map(|c| (c * 4, (c + 1) * 4)).collect();
        let plan = ShardPlan::from_raw_parts(32, chunks, vec![(0, 7), (7, 8)]);
        let weights = vec![10u64; 32];
        let diags = verify_plan(&SchedCase::new("mutant", &plan).with_weights(&weights));
        assert!(!has(&diags, SchedLintId::PlanChunkCoverage), "{diags:?}");
        assert!(!has(&diags, SchedLintId::PlanBandCoverage), "{diags:?}");
        assert!(has(&diags, SchedLintId::PlanQuantileMonotonic), "{diags:?}");
    }

    #[test]
    fn mutation_nonmonotone_cuts_are_caught() {
        // Chunk ends go 6 then 6 (second chunk empty => end not increasing).
        let plan =
            ShardPlan::from_raw_parts(10, vec![(0, 6), (6, 6), (6, 10)], vec![(0, 2), (2, 3)]);
        let weights = vec![1u64; 10];
        let diags = verify_plan(&SchedCase::new("mutant", &plan).with_weights(&weights));
        assert!(has(&diags, SchedLintId::PlanQuantileMonotonic), "{diags:?}");
    }

    // -- exec-log lints ---------------------------------------------------

    #[test]
    fn mutation_nested_parallelism_is_caught() {
        let clean = ExecRecord {
            n: 64,
            bands_used: 1,
            in_worker_at_entry: true,
            steals: 0,
            virtual_mode: false,
        };
        assert!(verify_exec_log("t", std::slice::from_ref(&clean)).is_empty());
        // The seeded bug: an invocation entered from a worker that spawned
        // four bands anyway.
        let mutant = ExecRecord { bands_used: 4, steals: 2, ..clean };
        let diags = verify_exec_log("t", &[mutant]);
        assert!(has(&diags, SchedLintId::ExecNestedParallelism), "{diags:?}");
    }

    #[test]
    fn real_nested_invocations_pass_the_lint() {
        // Drive the real engine: nested par_map_collect from inside workers
        // must log serial (1-band) inner invocations.
        dtc_par::set_exec_log(true);
        let _ = dtc_par::drain_exec_log();
        let out = dtc_par::par_map_collect(4, |i| dtc_par::par_map_collect(8, move |j| i * 8 + j));
        dtc_par::set_exec_log(false);
        let log = dtc_par::drain_exec_log();
        assert_eq!(out.len(), 4);
        assert!(!log.is_empty());
        let diags = verify_exec_log("nested", &log);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // -- lock graph -------------------------------------------------------

    #[test]
    fn acyclic_graph_is_clean() {
        let mut g = LockGraph::new();
        let a = g.class("serve.queue", "admission queue");
        let b = g.class("serve.seq", "sequence counter");
        let c = g.class("pool.inner", "pool state");
        g.edge(a, b, "server.rs::admit");
        g.edge(a, c, "hypothetical");
        let diags = verify_lock_graph("t", &g);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutation_inverted_edge_creates_cycle_and_is_caught() {
        let mut g = LockGraph::new();
        let a = g.class("serve.queue", "admission queue");
        let b = g.class("serve.seq", "sequence counter");
        g.edge(a, b, "server.rs::admit");
        // The seeded bug: someone acquires the queue while holding seq.
        g.edge(b, a, "mutant.rs::inverted");
        let diags = verify_lock_graph("t", &g);
        assert!(has(&diags, SchedLintId::LockOrderCycle), "{diags:?}");
        let msg = &diags.iter().find(|d| d.lint == SchedLintId::LockOrderCycle).unwrap().message;
        assert!(msg.contains("serve.queue") && msg.contains("serve.seq"), "{msg}");
    }

    #[test]
    fn mutation_self_edge_is_caught() {
        let mut g = LockGraph::new();
        let a = g.class("par.band_deque", "band deques");
        g.edge(a, a, "mutant.rs::reentrant");
        let diags = verify_lock_graph("t", &g);
        assert!(has(&diags, SchedLintId::LockSelfEdge), "{diags:?}");
    }

    #[test]
    fn mutation_unknown_class_is_caught() {
        let mut g = LockGraph::new();
        let a = g.class("telemetry.registry", "counter maps");
        g.edge(a, 7, "mutant.rs::dangling");
        let diags = verify_lock_graph("t", &g);
        assert!(has(&diags, SchedLintId::LockUnknownClass), "{diags:?}");
    }

    // -- pool protocol ----------------------------------------------------

    #[test]
    fn clean_pool_protocol_passes() {
        let events = [
            PoolEvent::Insert { primary: 1 },
            PoolEvent::Publish { primary: 1 },
            PoolEvent::Insert { primary: 2 },
            PoolEvent::Publish { primary: 2 },
            PoolEvent::Remove { primary: 1 },
            PoolEvent::FrontInvalidate { primary: 1 },
        ];
        let diags = verify_pool_events("t", &events);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutation_publish_before_insert_is_caught() {
        let events = [PoolEvent::Publish { primary: 9 }, PoolEvent::Insert { primary: 9 }];
        let diags = verify_pool_events("t", &events);
        assert!(has(&diags, SchedLintId::PoolPublishOrder), "{diags:?}");
    }

    #[test]
    fn mutation_evict_without_front_invalidate_is_caught() {
        let events = [
            PoolEvent::Insert { primary: 3 },
            PoolEvent::Publish { primary: 3 },
            PoolEvent::Remove { primary: 3 },
            // The seeded bug: the invalidate is delayed past the critical
            // section (another key's event interleaves).
            PoolEvent::Insert { primary: 4 },
            PoolEvent::FrontInvalidate { primary: 3 },
        ];
        let diags = verify_pool_events("t", &events);
        assert!(has(&diags, SchedLintId::PoolEvictFrontInvalidate), "{diags:?}");
    }

    #[test]
    fn double_insert_is_a_warning_not_an_error() {
        let events = [PoolEvent::Insert { primary: 5 }, PoolEvent::Insert { primary: 5 }];
        let diags = verify_pool_events("t", &events);
        assert!(has(&diags, SchedLintId::PoolDoubleInsert), "{diags:?}");
        assert_eq!(errors(&diags), 0, "{diags:?}");
    }

    // -- registry ---------------------------------------------------------

    #[test]
    fn sched_ids_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for id in SchedLintId::ALL {
            assert!(seen.insert(id.as_str()), "duplicate id {}", id.as_str());
            assert!(
                id.as_str()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "non-kebab id {}",
                id.as_str()
            );
        }
    }

    #[test]
    fn sched_catalog_matches_all() {
        let cat = sched_catalog();
        assert_eq!(cat.len(), SchedLintId::ALL.len());
        for (info, id) in cat.iter().zip(SchedLintId::ALL) {
            assert_eq!(info.id, id);
            assert_eq!(info.severity, id.severity());
        }
    }

    #[test]
    fn display_is_greppable() {
        let d = SchedDiagnostic::new(
            SchedLintId::PlanChunkCoverage,
            SchedLocation::chunk(3),
            "gap".into(),
        );
        assert!(d.to_string().starts_with("error[plan-chunk-coverage] @ chunk 3"), "{d}");
    }
}
