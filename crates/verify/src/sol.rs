//! Speed-of-light lints over a finished [`SimReport`]: no simulated kernel
//! may beat the hardware's physical limits, and the report's counters must
//! stay consistent with the trace they were accumulated from.

use crate::case::TraceCase;
use crate::diag::{Diagnostic, LintId, Location};
use dtc_sim::SimReport;

/// Relative slack for floating-point accumulation-order differences.
const SLACK: f64 = 1.0 - 1e-9;

/// Runs the report lints; returns the number of lint passes executed.
pub(crate) fn run(case: &TraceCase, report: &SimReport) -> (usize, Vec<Diagnostic>) {
    let device = case.device;
    let trace = case.trace;
    let mut diags = Vec::new();
    let mut passes = 0;

    // utilization-range.
    passes += 1;
    let util = report.tc_utilization;
    if !(util.is_finite() && (0.0..=1.0).contains(&util)) {
        diags.push(Diagnostic::new(
            LintId::UtilizationRange,
            Location::TRACE,
            format!("tc_utilization = {util} is outside [0, 1]"),
        ));
    }
    if let Some(hit) = report.l2_hit_rate {
        if !(hit.is_finite() && (0.0..=1.0).contains(&hit)) {
            diags.push(Diagnostic::new(
                LintId::UtilizationRange,
                Location::TRACE,
                format!("l2_hit_rate = {hit} is outside [0, 1]"),
            ));
        }
    }
    if !(report.cycles.is_finite() && report.cycles >= 0.0) {
        diags.push(Diagnostic::new(
            LintId::UtilizationRange,
            Location::TRACE,
            format!("cycles = {} must be finite and non-negative", report.cycles),
        ));
    }

    // sol-tensor-core: the whole device's TC pipes, perfectly packed,
    // cannot retire the trace's HMMA work faster than this.
    passes += 1;
    let tc_rate = device.num_sms as f64 * device.tc_hmma_per_cycle;
    if tc_rate > 0.0 {
        let floor = trace.total_hmma_ops() / tc_rate;
        if report.cycles < floor * SLACK {
            diags.push(Diagnostic::new(
                LintId::SolTensorCore,
                Location::TRACE,
                format!(
                    "{:.0} cycles beats the Tensor-Core speed of light {floor:.0} for {:.0} HMMA",
                    report.cycles,
                    trace.total_hmma_ops()
                ),
            ));
        }
    }

    // sol-dram: the DRAM bytes the report itself claims cannot move
    // faster than the device bandwidth.
    passes += 1;
    let dram_rate = device.dram_bytes_per_cycle();
    if dram_rate > 0.0 {
        let floor = report.dram_bytes / dram_rate;
        if report.cycles < floor * SLACK {
            diags.push(Diagnostic::new(
                LintId::SolDram,
                Location::TRACE,
                format!(
                    "{:.0} cycles beats the DRAM speed of light {floor:.0} for {:.0} DRAM bytes",
                    report.cycles, report.dram_bytes
                ),
            ));
        }
    }

    // counter-identity: the report's instruction totals must re-derive
    // from the trace (accumulation order may differ, hence the relative
    // tolerance), and its DRAM bytes from its own sector-miss counter.
    passes += 1;
    let mults = trace.class_multiplicities();
    let mut hmma = 0.0f64;
    let mut imad = 0.0f64;
    for (tb, &m) in trace.classes().iter().zip(&mults) {
        hmma += tb.hmma_count * m as f64;
        imad += tb.imad_count * m as f64;
    }
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
    if !close(hmma, report.counters.instructions.hmma) {
        diags.push(Diagnostic::new(
            LintId::CounterIdentity,
            Location::TRACE,
            format!(
                "report counts {:.0} HMMA but the trace totals {hmma:.0}",
                report.counters.instructions.hmma
            ),
        ));
    }
    if !close(imad, report.counters.instructions.imad) {
        diags.push(Diagnostic::new(
            LintId::CounterIdentity,
            Location::TRACE,
            format!(
                "report counts {:.0} IMAD but the trace totals {imad:.0}",
                report.counters.instructions.imad
            ),
        ));
    }
    let miss_bytes = report.counters.l2_sector_misses * device.sector_bytes as f64;
    if !close(miss_bytes, report.dram_bytes) {
        diags.push(Diagnostic::new(
            LintId::CounterIdentity,
            Location::TRACE,
            format!(
                "dram_bytes = {:.0} disagrees with l2_sector_misses x sector = {miss_bytes:.0}",
                report.dram_bytes
            ),
        ));
    }

    (passes, diags)
}
