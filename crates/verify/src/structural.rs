//! Structural invariants of the trace representation itself: launch
//! configuration, work-field sanity, sector-stream encoding, and
//! interning-class consistency.

use crate::case::TraceCase;
use crate::diag::{Diagnostic, LintId, Location};
use std::collections::HashMap;

/// At most this many diagnostics are emitted per lint before the rest are
/// folded into one summary line (a single broken lowering site can taint
/// every block of a large trace).
pub(crate) const MAX_PER_LINT: usize = 16;

/// Emits `diag` unless `count` already passed the cap; at the cap, emits a
/// summary instead. Returns the new count.
pub(crate) fn capped(diags: &mut Vec<Diagnostic>, count: usize, diag: Diagnostic) -> usize {
    if count < MAX_PER_LINT {
        diags.push(diag);
    } else if count == MAX_PER_LINT {
        let lint = diag.lint;
        diags.push(Diagnostic::new(
            lint,
            Location::TRACE,
            format!("further {} findings suppressed after the first {MAX_PER_LINT}", lint.as_str()),
        ));
    }
    count + 1
}

/// Runs the structural lints; returns the number of lint passes executed.
pub(crate) fn run(case: &TraceCase, diags: &mut Vec<Diagnostic>) -> usize {
    let trace = case.trace;
    let mut passes = 0;

    // occupancy-zero / warps-zero: the launch configuration itself.
    passes += 1;
    if trace.occupancy == 0 {
        diags.push(Diagnostic::new(
            LintId::OccupancyZero,
            Location::TRACE,
            "occupancy is 0: the thread block cannot fit on an SM (eq. 6 denominator)".into(),
        ));
    }
    passes += 1;
    if trace.warps_per_tb == 0 {
        diags.push(Diagnostic::new(
            LintId::WarpsZero,
            Location::TRACE,
            "warps_per_tb is 0: a thread block must hold at least one warp".into(),
        ));
    }

    // hit-rate-range.
    passes += 1;
    let hit = trace.assumed_l2_hit_rate;
    if !(hit.is_finite() && (0.0..=1.0).contains(&hit)) {
        diags.push(Diagnostic::new(
            LintId::HitRateRange,
            Location::TRACE,
            format!("assumed_l2_hit_rate = {hit} is outside [0, 1]"),
        ));
    }

    // nonfinite-count: every numeric work field of every class.
    passes += 1;
    let mut found = 0;
    for (c, tb) in trace.classes().iter().enumerate() {
        for (name, v) in tb.numeric_fields() {
            if !(v.is_finite() && v >= 0.0) {
                found = capped(
                    diags,
                    found,
                    Diagnostic::new(
                        LintId::NonfiniteCount,
                        Location::class(c),
                        format!("{name} = {v} must be finite and non-negative"),
                    ),
                );
            }
        }
    }

    // stream-non-canonical / stream-out-of-bounds.
    passes += 1;
    let bound = case.problem.map(|p| {
        let row_sectors = ((p.n as u64 * 4).div_ceil(32)).max(1);
        (p.cols as u64).saturating_mul(row_sectors)
    });
    if bound.is_some() {
        passes += 1;
    }
    let mut non_canonical = 0;
    let mut oob = 0;
    if trace.has_streams() {
        for i in 0..trace.num_tbs() {
            let stream = trace.stream(i);
            let runs = stream.runs();
            for (k, run) in runs.iter().enumerate() {
                if run.len == 0 {
                    non_canonical = capped(
                        diags,
                        non_canonical,
                        Diagnostic::new(
                            LintId::StreamNonCanonical,
                            Location::tb(i),
                            format!("run {k} has length 0 (start {})", run.start),
                        ),
                    );
                }
                if k + 1 < runs.len() {
                    let next = &runs[k + 1];
                    if run.start + run.len as u64 == next.start && run.len < u32::MAX {
                        non_canonical = capped(
                            diags,
                            non_canonical,
                            Diagnostic::new(
                                LintId::StreamNonCanonical,
                                Location::tb(i),
                                format!(
                                    "runs {k} and {} are contiguous ({}+{} = {}) but unmerged",
                                    k + 1,
                                    run.start,
                                    run.len,
                                    next.start
                                ),
                            ),
                        );
                    }
                }
                if let Some(limit) = bound {
                    let end = run.start.saturating_add(run.len as u64);
                    if end > limit {
                        oob = capped(
                            diags,
                            oob,
                            Diagnostic::new(
                                LintId::StreamOutOfBounds,
                                Location::tb(i),
                                format!(
                                    "run {k} ends at sector {end} beyond the B footprint of {limit} sectors"
                                ),
                            ),
                        );
                    }
                }
            }
        }
    }

    // class-duplicate / class-unreferenced: interning consistency. Legacy
    // (non-interned) traces legitimately duplicate classes, so the
    // duplicate check only applies to interned traces.
    passes += 1;
    if trace.interning() {
        let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut dup = 0;
        for (c, tb) in trace.classes().iter().enumerate() {
            let mut key: Vec<u64> = tb.numeric_fields().iter().map(|&(_, v)| v.to_bits()).collect();
            key.push(tb.overlap_a_fetch as u64);
            if let Some(&first) = seen.get(&key) {
                dup = capped(
                    diags,
                    dup,
                    Diagnostic::new(
                        LintId::ClassDuplicate,
                        Location::class(c),
                        format!("duplicates class {first}: interning should have merged them"),
                    ),
                );
            } else {
                seen.insert(key, c);
            }
        }
    }
    passes += 1;
    let mut unref = 0;
    for (c, &mult) in trace.class_multiplicities().iter().enumerate() {
        if mult == 0 {
            unref = capped(
                diags,
                unref,
                Diagnostic::new(
                    LintId::ClassUnreferenced,
                    Location::class(c),
                    "no thread block references this class".into(),
                ),
            );
        }
    }

    passes
}
