//! Lint-ID stability gate.
//!
//! Lint ids are a public, machine-consumed surface: they appear in
//! `TRACELINT.json` / `SCHEDCHECK.json`, in `DtcError::Verify`
//! diagnostics users grep for, and in `tracelint --explain` lookups.
//! This test pins every registered id and its fixed severity — in both
//! registries — against the checked-in `lint_ids.fixture`. Renaming a
//! lint, changing its severity, or removing one is a breaking change and
//! must update the fixture (and `docs/LINTS.md`) deliberately; appending
//! a new lint appends a fixture line.

#[test]
fn registered_lint_ids_and_severities_are_stable() {
    let fixture = include_str!("lint_ids.fixture");
    let pinned: Vec<(&str, &str)> = fixture
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_once(' ').expect("fixture line is `<id> <severity>`"))
        .collect();
    let current: Vec<(&str, &str)> =
        dtc_verify::all_lints().iter().map(|l| (l.id, l.severity.as_str())).collect();

    for (i, (pin, cur)) in pinned.iter().zip(&current).enumerate() {
        assert_eq!(
            pin, cur,
            "lint registry drifted from the fixture at row {i}: \
             pinned {pin:?}, registry has {cur:?}"
        );
    }
    assert!(
        current.len() >= pinned.len(),
        "a pinned lint was removed: fixture has {} rows, registry {}",
        pinned.len(),
        current.len()
    );
    assert_eq!(
        current.len(),
        pinned.len(),
        "new lints registered — append them to lint_ids.fixture: {:?}",
        &current[pinned.len()..]
    );
}
