//! End-to-end GCN training (the paper's §5.4 case study): train a
//! two-layer GCN on a synthetic citation graph with the DTC-SpMM backend,
//! and compare the simulated 200-epoch training time against DGL-style
//! and PyG-style backends.
//!
//! Run with: `cargo run --release --example gnn_training`

use dtc_spmm::datasets::igb_datasets;
use dtc_spmm::gnn::{
    train_gcn, DglGnnBackend, DtcGnnBackend, GnnBackend, PygGatherScatterBackend,
    PygSparseTensorBackend, TrainConfig,
};
use dtc_spmm::sim::Device;

fn main() {
    let dataset = &igb_datasets()[0]; // IGB-tiny stand-in
    let graph = dataset.matrix();
    println!("graph: {} ({} nodes, {} edges)", dataset.name, graph.rows(), graph.nnz());

    let device = Device::rtx4090();
    let config =
        TrainConfig { epochs: 200, hidden: 128, features: 64, classes: 8, lr: 0.05, seed: 3 };

    let backends: Vec<Box<dyn GnnBackend>> = vec![
        Box::new(DtcGnnBackend::new(&graph)),
        Box::new(DglGnnBackend::new(&graph)),
        Box::new(PygGatherScatterBackend::new(&graph)),
        Box::new(PygSparseTensorBackend::new(&graph)),
    ];
    let mut dtc_total = None;
    for backend in &backends {
        let report = train_gcn(&graph, backend.as_ref(), &config, &device);
        let total = report.total_ms;
        if dtc_total.is_none() {
            dtc_total = Some(total);
        }
        println!(
            "{:>20}: {:8.1} ms for {} epochs (epoch {:.3} ms, setup {:.3} ms) \
             loss {:.3} -> {:.3}, acc {:.2}, speedup vs this {:.2}x",
            report.backend,
            total,
            config.epochs,
            report.epoch_ms,
            report.setup_ms,
            report.losses.first().unwrap_or(&0.0),
            report.losses.last().unwrap_or(&0.0),
            report.accuracy,
            total / dtc_total.expect("set on first iteration"),
        );
    }
}
