//! Kernel-selector demo: how the simulation-based Selector (§4.5.2)
//! separates balanced from imbalanced workloads, and what the strict-
//! balance kernel actually buys on each.
//!
//! Run with: `cargo run --release --example kernel_selector`

use dtc_spmm::baselines::SpmmKernel;
use dtc_spmm::core::{BalancedDtcKernel, DtcKernel, Selector};
use dtc_spmm::formats::{gen, MeTcfMatrix};
use dtc_spmm::sim::Device;

fn main() {
    let device = Device::rtx4090();
    let selector = Selector::default();
    let n = 128;

    let cases = vec![
        ("uniform (balanced)", gen::uniform(16384, 16384, 16384 * 32, 1)),
        ("mildly skewed", gen::long_row(2048, 2048, 120.0, 0.5, 2)),
        ("heavily skewed", gen::long_row(1024, 1024, 300.0, 1.8, 3)),
    ];
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "workload", "AR", "choice", "base ms", "balanced ms", "gain"
    );
    for (label, a) in cases {
        let metcf = MeTcfMatrix::from_csr(&a);
        let decision = selector.decide(&metcf, &device);
        let base = DtcKernel::new(&a).simulate(n, &device).time_ms;
        let balanced = BalancedDtcKernel::new(&a).simulate(n, &device).time_ms;
        println!(
            "{:<20} {:>8.2} {:>12} {:>12.4} {:>12.4} {:>9.1}%",
            label,
            decision.approximation_ratio,
            format!("{:?}", decision.choice),
            base,
            balanced,
            (base / balanced - 1.0) * 100.0,
        );
    }
    println!(
        "\nThe Selector computes both makespans from the thread-block scheduling\n\
         policy model (eq. (1)) without running either kernel, and launches the\n\
         balanced kernel only when AR > 1.2."
    );
}
