//! Matrix Market workflow: generate a matrix, write it to `.mtx`, load it
//! back (the path a SuiteSparse user would take), build an iterative SpMM
//! session, and read the §6 amortization analysis.
//!
//! Run with: `cargo run --release --example mtx_workflow`

use dtc_spmm::core::{EngineRecommendation, IterativeSpmm};
use dtc_spmm::formats::{gen, mtx, DenseMatrix};
use dtc_spmm::sim::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a synthetic web graph to Matrix Market format.
    let path = std::env::temp_dir().join("dtc_spmm_example.mtx");
    let generated = gen::web(4096, 4096, 12.0, 2.1, 0.7, 99);
    mtx::write_mtx_file(&path, &generated)?;
    println!("wrote {} ({} nnz)", path.display(), generated.nnz());

    // 2. Load it back, as one would with a downloaded SuiteSparse matrix.
    let a = mtx::read_mtx_file(&path)?;
    assert_eq!(a.nnz(), generated.nnz());

    // 3. Iterative session: conversion paid once, then SpMM per iteration.
    let session = IterativeSpmm::new(&a, Device::rtx4090());
    let b = DenseMatrix::from_fn(a.cols(), 128, |r, c| ((r + c) % 9) as f32 * 0.1);
    for _ in 0..5 {
        let c = session.execute(&b)?;
        assert_eq!(c.rows(), a.rows());
    }
    println!("ran {} iterations; selector chose {:?}", session.runs(), session.engine().choice());

    // 4. The §6 amortization analysis.
    let report = session.amortization(128);
    println!(
        "setup {:.3} ms; per-iteration DTC {:.4} ms vs cuSPARSE {:.4} ms",
        report.setup_ms, report.dtc_iter_ms, report.cusparse_iter_ms
    );
    match report.break_even_iterations {
        Some(it) => println!("DTC pays for itself after {it} iterations"),
        None => println!("DTC never pays off on this matrix/device"),
    }
    for iterations in [1u64, 100, 10_000] {
        let rec = report.recommend(iterations);
        println!(
            "{iterations:>6} iterations -> {}",
            match rec {
                EngineRecommendation::Dtc => "DTC-SpMM",
                EngineRecommendation::Cusparse => "cuSPARSE (conversion-free)",
            }
        );
    }
    let _ = std::fs::remove_file(&path);
    Ok(())
}
