//! Quickstart: build the DTC-SpMM engine for one matrix, run an exact
//! SpMM, and inspect the simulated RTX4090 performance next to cuSPARSE
//! and TCGNN-SpMM.
//!
//! Run with: `cargo run --release --example quickstart`

use dtc_spmm::baselines::{CusparseSpmm, TcgnnSpmm};
use dtc_spmm::core::{DtcSpmm, SpmmKernel};
use dtc_spmm::formats::stats::MatrixStats;
use dtc_spmm::formats::{gen, DenseMatrix};
use dtc_spmm::sim::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic scale-free graph: 4096 nodes, ~10 neighbours each.
    let a = gen::web(4096, 4096, 10.0, 2.1, 0.7, 7);
    let stats = MatrixStats::of(&a);
    println!(
        "matrix: {}x{}, nnz {}, AvgRowL {:.2} ({})",
        stats.rows,
        stats.cols,
        stats.nnz,
        stats.avg_row_len,
        if stats.is_type_ii() { "Type II" } else { "Type I" }
    );

    // 2. Build the engine: TCA reorder -> ME-TCF -> Selector -> kernel.
    let engine = DtcSpmm::builder().reorder(true).build(&a);
    println!(
        "selector: AR {:.2} -> {:?}; MeanNnzTC {:.2} over {} TC blocks",
        engine.decision().approximation_ratio,
        engine.choice(),
        engine.metcf().mean_nnz_tc(),
        engine.metcf().num_tc_blocks(),
    );

    // 3. Exact SpMM (TF32 multiplicands, FP32 accumulate), checked against
    //    the CSR reference.
    let b = DenseMatrix::from_fn(4096, 128, |r, c| ((r * 13 + c * 7) % 17) as f32 * 0.1);
    let c = engine.execute(&b)?;
    let reference = a.spmm_reference(&b)?;
    println!("max |C - C_ref| = {:.2e}", c.max_abs_diff(&reference));

    // 4. Simulated performance on the RTX4090 model vs two baselines.
    let device = Device::rtx4090();
    let n = 128;
    for (name, report) in [
        ("DTC-SpMM", engine.simulate(n, &device)),
        ("cuSPARSE", CusparseSpmm::new(&a).simulate(n, &device)),
        ("TCGNN", TcgnnSpmm::new(&a)?.simulate(n, &device)),
    ] {
        println!(
            "{name:>10}: {:.4} ms  ({:.1} GFLOPS, TC util {:.1}%, IMAD/HMMA {:.1})",
            report.time_ms,
            report.gflops(engine.flops(n)),
            report.tc_utilization * 100.0,
            report.imad_per_hmma,
        );
    }
    Ok(())
}
