//! Reordering study: how much TC-block density each reordering algorithm
//! recovers on a shuffled community graph, and what it buys the DTC
//! kernel.
//!
//! Run with: `cargo run --release --example reorder_study`

use dtc_spmm::baselines::SpmmKernel;
use dtc_spmm::core::DtcKernel;
use dtc_spmm::formats::{gen, Condensed};
use dtc_spmm::reorder::{
    IdentityReorderer, LouvainReorderer, Lsh64Reorderer, MetisLikeReorderer, Reorderer,
    TcaReorderer,
};
use dtc_spmm::sim::Device;

fn main() {
    // A community graph whose rows arrive fully shuffled: the worst case
    // for SGT condensing and the best case for reordering.
    let a = gen::community(2048, 2048, 64, 12.0, 0.9, 99);
    let device = Device::rtx4090();
    let n = 128;

    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "method", "MeanNnzTC", "TC blocks", "DTC ms", "speedup"
    );
    let base_ms = DtcKernel::new(&a).simulate(n, &device).time_ms;
    let reorderers: Vec<Box<dyn Reorderer>> = vec![
        Box::new(IdentityReorderer),
        Box::new(MetisLikeReorderer::default()),
        Box::new(LouvainReorderer::default()),
        Box::new(Lsh64Reorderer::default()),
        Box::new(TcaReorderer::default()),
    ];
    for r in &reorderers {
        let m = a.permute_rows(&r.reorder(&a));
        let condensed = Condensed::from_csr(&m);
        let ms = DtcKernel::new(&m).simulate(n, &device).time_ms;
        println!(
            "{:<14} {:>10.2} {:>10} {:>12.4} {:>9.2}x",
            r.name(),
            condensed.mean_nnz_tc(),
            condensed.num_tc_blocks(),
            ms,
            base_ms / ms,
        );
    }
}
