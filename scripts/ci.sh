#!/usr/bin/env bash
# The full local CI gate; run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (sim compression equivalence)"
cargo test -q --test sim_compression

echo "== cargo bench --no-run"
cargo bench --no-run --workspace

echo "== sim_throughput --smoke"
cargo run --release -q -p dtc-bench --bin sim_throughput -- --smoke

echo "== tracelint --smoke"
cargo run --release -q -p dtc-bench --bin tracelint -- --smoke

echo "== fuzz --smoke"
cargo run --release -q -p dtc-bench --bin fuzz -- --smoke

echo "== serve_bench --smoke (bitwise conformance; pool hit-rate gate 90%)"
cargo run --release -q -p dtc-bench --bin serve_bench -- --smoke

echo "== cache_bench --smoke (two-tier <= exact-only steady state; collision verify-reject)"
cargo run --release -q -p dtc-bench --bin cache_bench -- --smoke

echo "== schedcheck --smoke (schedule-space model check; lock-order audit)"
cargo run --release -q -p dtc-bench --bin schedcheck -- --smoke

echo "== streaming_bench --smoke (delta bitwise identity; 5x single-window gate)"
cargo run --release -q -p dtc-bench --bin streaming_bench -- --smoke

echo "== parallel_scaling --smoke (threads 1 and 4; critical-path gate 1.5x)"
cargo run --release -q -p dtc-bench --bin parallel_scaling -- --smoke

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "CI gate passed."
