//! Offline in-tree shim of the `criterion` crate.
//!
//! The workspace builds without registry access, so this crate implements the
//! subset of criterion our `benches/` targets use: `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, sample_size, throughput, finish}`,
//! `Bencher::iter`, and `Throughput::Bytes`.
//!
//! Measurement is a plain monotonic-clock loop (median of N samples after a
//! short warm-up) — no statistical regression analysis, plots, or baselines.
//! When the binary is invoked with `--test` (what `cargo test` passes to
//! `harness = false` bench targets), every benchmark body runs exactly once
//! so the suite stays fast and still smoke-tests each bench path.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// How work is scaled when reporting throughput (subset of upstream's enum).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Passed to every benchmark closure; drives the timing loop.
pub struct Bencher {
    mode: Mode,
    /// Median wall-clock time of one iteration, filled in by [`Bencher::iter`].
    sampled: Option<Duration>,
    sample_size: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Full measurement (cargo bench).
    Measure,
    /// One iteration per body (cargo test on a harness=false target).
    Smoke,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(f());
            self.sampled = Some(Duration::ZERO);
            return;
        }
        // Warm-up: at least one call, then as many as fit in a short budget.
        let warm_budget = Duration::from_millis(50);
        let warm_start = Instant::now();
        std::hint::black_box(f());
        while warm_start.elapsed() < warm_budget {
            std::hint::black_box(f());
        }
        // Pick an inner batch so one sample costs >= ~1ms, amortising timer
        // overhead for nanosecond-scale bodies.
        let probe = {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        };
        let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos().max(1)).max(1) as usize;
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t.elapsed() / batch as u32
            })
            .collect();
        samples.sort_unstable();
        self.sampled = Some(samples[samples.len() / 2]);
    }
}

/// Top-level handle handed to each `criterion_group!` function.
pub struct Criterion {
    mode: Mode,
}

impl Criterion {
    fn from_args() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`;
        // `cargo bench` passes `--bench`. Only the former demotes to smoke mode.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { mode: if smoke { Mode::Smoke } else { Mode::Measure } }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.mode, name, 20, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 20 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration work scale (accepted; reporting only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion.mode, &full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one(mode: Mode, name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mode, sampled: None, sample_size };
    f(&mut bencher);
    match (mode, bencher.sampled) {
        (Mode::Smoke, _) => println!("bench {name} ... smoke ok"),
        (Mode::Measure, Some(d)) => println!("bench {name} ... {:>12} ns/iter", d.as_nanos()),
        (Mode::Measure, None) => println!("bench {name} ... no iter() call"),
    }
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::__new_criterion();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Internal constructor used by `criterion_group!`; not public API.
#[doc(hidden)]
pub fn __new_criterion() -> Criterion {
    Criterion::from_args()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_bodies() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut calls = 0;
        c.bench_function("standalone", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);

        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(128));
        let mut grouped = 0;
        group.bench_function("inner", |b| b.iter(|| grouped += 1));
        group.finish();
        assert_eq!(grouped, 1);
    }

    #[test]
    fn measure_mode_reports_a_duration() {
        let mut bencher = Bencher { mode: Mode::Measure, sampled: None, sample_size: 3 };
        bencher.iter(|| std::hint::black_box(41 + 1));
        assert!(bencher.sampled.is_some());
    }
}
