//! Offline in-tree shim of the `proptest` crate.
//!
//! The workspace builds without registry access, so this crate implements the
//! subset of proptest that the in-tree property suites use: range/tuple/`Just`
//! strategies, `collection::vec`, `prop_map`/`prop_flat_map`, `any::<bool>()`,
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its case index and the fixed
//!   per-test seed; re-running the test replays the identical sequence.
//! - **Deterministic by default.** The generator seed is derived from the test
//!   name, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]
use std::ops::Range;

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Runner plumbing (mirrors `proptest::test_runner`).
pub mod test_runner {
    use super::*;

    /// Knobs for a `proptest!` block (subset of upstream's config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; try another one.
        Reject(String),
        /// A `prop_assert*!` failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one case (mirrors upstream's alias).
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: generates inputs and evaluates the body.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `body` against `config.cases` inputs drawn from `strategy`.
        ///
        /// Panics (failing the enclosing `#[test]`) on the first falsified
        /// case, reporting the test name, case index, and seed.
        pub fn run<S: Strategy>(
            &mut self,
            name: &str,
            strategy: &S,
            body: impl Fn(S::Value) -> TestCaseResult,
        ) {
            let seed = fnv1a(name.as_bytes());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                let case = strategy.generate(&mut rng);
                match body(case) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest {name}: too many prop_assume! rejections \
                                 ({rejected}) after {passed} passing cases"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest {name}: case {passed} failed (seed {seed:#x}): {msg}");
                    }
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate` draws
/// one value from the deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy (mirrors `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy returned by [`any`] (uniform over the type's values).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random_range(0u32..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Anything usable as a `vec` length specification.
    pub trait IntoSizeRange {
        /// Converts to a concrete `[min, max)` length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// Strategy generating `Vec`s of element strategy draws.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_size_range() }
    }
}

/// One-stop import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Callers write `#[test]` themselves (as with the real proptest
        // crate); it arrives through `$meta`, so emitting another here
        // would duplicate the attribute.
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(stringify!($name), &strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Filters out inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuple_and_vec(v in crate::collection::vec((0usize..5, 0i32..3), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 3);
            }
        }

        #[test]
        fn flat_map_and_just((n, m) in (1usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            prop_assert!(m < n);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn mut_binding(mut v in crate::collection::vec(0u32..9, 1..8)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        let collect = || {
            // `run` takes `Fn`, so collect through interior mutability.
            let got = std::cell::RefCell::new(Vec::new());
            TestRunner::new(ProptestConfig::with_cases(32)).run(
                "determinism_probe",
                &(0usize..1000),
                |x| {
                    got.borrow_mut().push(x);
                    Ok(())
                },
            );
            got.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
