//! Offline in-tree shim of the `rand` crate.
//!
//! The workspace builds without registry access, so this crate provides the
//! *exact* API subset used in-tree — `StdRng::seed_from_u64`,
//! `RngExt::random_range`, and `seq::SliceRandom::shuffle` — backed by a
//! deterministic xoshiro256** generator. Streams are stable across
//! platforms and releases: every generated dataset is a pure function of
//! its seed, which the reproduction's figures rely on.
//!
//! This is NOT a cryptographic RNG and is not the upstream `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generator types (mirrors `rand::rngs`).

    /// A deterministic xoshiro256** PRNG standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion, the standard xoshiro seeding recipe.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s: if s == [0; 4] { [1, 2, 3, 4] } else { s } }
    }
}

/// A half-open range values can be drawn from (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is < 2^-64,
                // far below anything the deterministic test corpus can see.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range_inclusive!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Value-generation methods on a generator (mirrors rand 0.9+'s `Rng`,
/// imported in-tree as `RngExt`).
pub trait RngExt {
    /// Draws one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

pub mod seq {
    //! Sequence helpers (mirrors `rand::seq`).

    use super::{RngExt, StdRng};

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.random_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_cover_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
