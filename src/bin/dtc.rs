//! `dtc` — command-line front end for the DTC-SpMM library.
//!
//! ```text
//! dtc info  <matrix.mtx>                      statistics + format footprints
//! dtc bench <matrix.mtx> [--n N] [--device 4090|3090] [--reorder]
//!                                             run the full kernel lineup
//! dtc reorder <in.mtx> <out.mtx>              write the TCA-reordered matrix
//! dtc gen <kind> <rows> <avg_deg> <out.mtx> [--seed S]
//!                                             generate a synthetic matrix
//!                                             (kind: web|community|longrow|uniform|banded)
//! ```

use dtc_spmm::baselines::{
    CusparseSpmm, HpSpmm, SparseTirSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm,
};
use dtc_spmm::core::{DtcSpmm, IterativeSpmm};
use dtc_spmm::formats::footprint::footprint_of;
use dtc_spmm::formats::stats::{CondensedStats, MatrixStats};
use dtc_spmm::formats::{gen, mtx, Condensed, CsrMatrix};
use dtc_spmm::reorder::{Reorderer, TcaReorderer};
use dtc_spmm::sim::Device;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dtc info  <matrix.mtx>\n  dtc bench <matrix.mtx> [--n N] [--device 4090|3090] [--reorder]\n  dtc reorder <in.mtx> <out.mtx>\n  dtc gen <web|community|longrow|uniform|banded> <rows> <avg_deg> <out.mtx> [--seed S]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") if args.len() >= 2 => cmd_info(&args[1]),
        Some("bench") if args.len() >= 2 => cmd_bench(&args[1], &args[2..]),
        Some("reorder") if args.len() >= 3 => cmd_reorder(&args[1], &args[2]),
        Some("gen") if args.len() >= 5 => cmd_gen(&args[1..]),
        _ => return usage(),
    };
    if let Some(path) = dtc_spmm::telemetry::flush_env_sink() {
        eprintln!("metrics snapshot written to {}", path.display());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_info(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let a = mtx::read_mtx_file(path)?;
    let s = MatrixStats::of(&a);
    println!("matrix     : {path}");
    println!("shape      : {} x {}", s.rows, s.cols);
    println!("nnz        : {}", s.nnz);
    println!(
        "AvgRowL    : {:.2} ({})",
        s.avg_row_len,
        if s.is_type_ii() { "Type II" } else { "Type I" }
    );
    println!("max row    : {}", s.max_row_len);
    println!("row-len CV : {:.2}", s.row_len_cv);
    println!("sparsity   : {:.4}%", s.sparsity * 100.0);
    let c = Condensed::from_csr(&a);
    let cs = CondensedStats::of(&c);
    println!("-- after SGT condensing --");
    println!("TC blocks  : {}", cs.num_tc_blocks);
    println!("MeanNnzTC  : {:.2}", cs.mean_nnz_tc);
    println!("window gini: {:.3}", cs.window_load_gini);
    let fp = footprint_of(&a);
    println!("-- index storage (32-bit elements) --");
    println!("CSR        : {}", fp.csr);
    println!("TCF        : {} ({:+.1}% vs CSR)", fp.tcf, fp.tcf_vs_csr_pct());
    println!("ME-TCF     : {} ({:+.1}% vs CSR)", fp.metcf, -fp.metcf_saving_vs_csr_pct());
    Ok(())
}

fn cmd_bench(path: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = flag_value(rest, "--n").unwrap_or("128").parse()?;
    let device = match flag_value(rest, "--device").unwrap_or("4090") {
        "3090" => Device::rtx3090(),
        _ => Device::rtx4090(),
    };
    let reorder = rest.iter().any(|a| a == "--reorder");
    let mut a = mtx::read_mtx_file(path)?;
    if reorder {
        let perm = TcaReorderer::default().reorder(&a);
        a = a.permute_rows(&perm);
        println!("(TCA-reordered)");
    }
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>12}",
        "kernel", "time (ms)", "GFLOPS", "TC util", "IMAD/HMMA"
    );
    let flops = a.spmm_flops(n);
    let show = |name: &str, k: &dyn SpmmKernel| {
        let r = k.simulate(n, &device);
        println!(
            "{:<14} {:>10.4} {:>10.1} {:>8.1}% {:>12.1}",
            name,
            r.time_ms,
            r.gflops(flops),
            r.tc_utilization * 100.0,
            if r.imad_per_hmma.is_finite() { r.imad_per_hmma } else { f64::NAN },
        );
    };
    let dtc = DtcSpmm::builder().device(device.clone()).build(&a);
    show("DTC-SpMM", &dtc);
    show("cuSPARSE", &CusparseSpmm::new(&a));
    match TcgnnSpmm::new(&a) {
        Ok(k) => show("TCGNN", &k),
        Err(e) => println!("{:<14} {e}", "TCGNN"),
    }
    match SputnikSpmm::new(&a) {
        Ok(k) => show("Sputnik", &k),
        Err(e) => println!("{:<14} {e}", "Sputnik"),
    }
    show("SparseTIR", &SparseTirSpmm::new(&a));
    show("HP-SpMM", &HpSpmm::new(&a));
    // Amortization advice (§6).
    let session = IterativeSpmm::new(&a, device);
    let report = session.amortization(n);
    match report.break_even_iterations {
        Some(it) => println!(
            "\nDTC setup amortizes after {it} iterations (setup {:.3} ms).",
            report.setup_ms
        ),
        None => {
            println!("\nDTC is not faster per iteration here; prefer a conversion-free engine.")
        }
    }
    Ok(())
}

fn cmd_reorder(input: &str, output: &str) -> Result<(), Box<dyn std::error::Error>> {
    let a = mtx::read_mtx_file(input)?;
    let before = Condensed::from_csr(&a).mean_nnz_tc();
    let perm = TcaReorderer::default().reorder(&a);
    let m = a.permute_rows(&perm);
    let after = Condensed::from_csr(&m).mean_nnz_tc();
    mtx::write_mtx_file(output, &m)?;
    println!("MeanNnzTC {before:.2} -> {after:.2}; wrote {output}");
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let kind = args[0].as_str();
    let rows: usize = args[1].parse()?;
    let avg: f64 = args[2].parse()?;
    let out = &args[3];
    let seed: u64 = flag_value(&args[4..], "--seed").unwrap_or("42").parse()?;
    let a: CsrMatrix = match kind {
        "web" => gen::web(rows, rows, avg, 2.1, 0.7, seed),
        "community" => {
            gen::community_with_shuffle(rows, rows, (rows / 64).max(1), avg, 0.85, 0.3, seed)
        }
        "longrow" => gen::long_row(rows, rows, avg, 1.0, seed),
        "uniform" => gen::uniform(rows, rows, (rows as f64 * avg) as usize, seed),
        "banded" => gen::banded(rows, rows, (avg * 2.0) as usize + 1, avg, seed),
        other => return Err(format!("unknown generator kind: {other}").into()),
    };
    mtx::write_mtx_file(out, &a)?;
    println!("wrote {out}: {} x {}, {} nnz", a.rows(), a.cols(), a.nnz());
    Ok(())
}
