//! # dtc-spmm
//!
//! A Rust reproduction of **DTC-SpMM: Bridging the Gap in Accelerating
//! General Sparse Matrix Multiplication with Tensor Cores** (Fan, Wang,
//! Chu — ASPLOS 2024), built on a simulated-GPU substrate.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! - [`formats`] — sparse formats (CSR/COO/TCF/ME-TCF/BELL/CVSE), SGT
//!   condensing, TF32 numerics, generators;
//! - [`sim`] — the analytical GPU simulator (devices, thread-block
//!   scheduling, pipelines, L2);
//! - [`reorder`] — TCU-Cache-Aware reordering and baselines;
//! - [`baselines`] — the eight competitor SpMM implementations;
//! - [`core`] — DTC-SpMM itself: runtime kernels, Selector, pipeline;
//! - [`gnn`] — the end-to-end GCN case study;
//! - [`datasets`] — synthetic stand-ins for the paper's benchmarks;
//! - [`telemetry`] — the process-wide metrics registry behind the
//!   `DTC_METRICS` JSON snapshot;
//! - [`verify`] — the static trace/model analyzer behind the `tracelint`
//!   CI gate (resource legality, conservation laws, speed-of-light), plus
//!   the concurrency-lint registry (`verify::sched`);
//! - [`sched`] — the bounded schedule-space model checker behind the
//!   `schedcheck` CI gate: exhaustive steal-schedule enumeration with
//!   partial-order reduction, replayed on the real engine substrate, and
//!   the workspace lock-order audit;
//! - [`fuzz`] — the deterministic differential fuzzing harness behind the
//!   `fuzz` CI gate (adversarial generators, f64 + TF32-envelope oracles,
//!   shrinking to minimal reproducers);
//! - [`serve`] — the multi-tenant serving layer: keyed engine pool,
//!   admission/coalescing server and closed-loop load generator over the
//!   unified [`SpmmEngine`](dtc_core::SpmmEngine) trait.
//!
//! # Quickstart
//!
//! ```
//! use dtc_spmm::core::{prepare, EngineConfig, EngineKind, SpmmEngine};
//! use dtc_spmm::formats::{gen::power_law, DenseMatrix};
//! use dtc_spmm::sim::Device;
//!
//! # fn main() -> Result<(), dtc_spmm::core::DtcError> {
//! // A sparse graph adjacency matrix and a dense feature matrix.
//! let a = power_law(512, 512, 8.0, 2.2, 42);
//! let b = DenseMatrix::ones(512, 128);
//!
//! // Prepare once behind the unified engine trait — reorder, convert to
//! // ME-TCF, select a kernel — then execute as often as needed.
//! let config = EngineConfig { reorder: true, ..EngineConfig::default() };
//! let engine = prepare(EngineKind::Dtc, &config, &a)?;
//!
//! // Exact result (TF32-rounded multiplicands, FP32 accumulation).
//! let c = engine.execute(&b)?;
//! assert_eq!(c.rows(), 512);
//!
//! // Simulated RTX4090 performance.
//! let report = engine.simulate(128, &Device::rtx4090());
//! println!("time: {:.4} ms, TC util {:.1}%", report.time_ms, report.tc_utilization * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One-stop imports for the common workflow.
///
/// ```
/// use dtc_spmm::prelude::*;
///
/// let a = gen::web(256, 256, 8.0, 2.1, 0.7, 1);
/// let engine = DtcSpmm::builder().build(&a);
/// let report = engine.simulate(64, &Device::rtx4090());
/// assert!(report.time_ms > 0.0);
/// ```
pub mod prelude {
    pub use dtc_baselines::SpmmKernel;
    pub use dtc_core::{
        BalancedDtcKernel, DtcKernel, DtcSpmm, IterativeSpmm, KernelChoice, KernelOpts, Selector,
    };
    pub use dtc_formats::{gen, mtx, Condensed, CsrMatrix, DenseMatrix, MeTcfMatrix, Precision};
    pub use dtc_reorder::{Reorderer, TcaReorderer};
    pub use dtc_sim::{Device, SimReport};
}

pub use dtc_baselines as baselines;
pub use dtc_core as core;
pub use dtc_datasets as datasets;
pub use dtc_formats as formats;
pub use dtc_fuzz as fuzz;
pub use dtc_gnn as gnn;
pub use dtc_par as par;
pub use dtc_reorder as reorder;
pub use dtc_sched as sched;
pub use dtc_serve as serve;
pub use dtc_sim as sim;
pub use dtc_telemetry as telemetry;
pub use dtc_verify as verify;
