//! End-to-end tests of the `dtc` command-line tool, driving the compiled
//! binary exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn dtc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtc"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dtc_cli_test_{name}"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = dtc().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn gen_info_bench_pipeline() {
    let mtx = temp("pipeline.mtx");
    // gen
    let out = dtc()
        .args(["gen", "web", "1024", "8", mtx.to_str().expect("utf8 path")])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));
    // info
    let out = dtc().args(["info", mtx.to_str().expect("utf8")]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("MeanNnzTC"));
    assert!(text.contains("ME-TCF"));
    assert!(text.contains("1024 x 1024"));
    // bench
    let out =
        dtc().args(["bench", mtx.to_str().expect("utf8"), "--n", "64"]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("DTC-SpMM"));
    assert!(text.contains("cuSPARSE"));
    assert!(text.contains("iterations") || text.contains("conversion-free"));
    let _ = std::fs::remove_file(&mtx);
}

#[test]
fn reorder_roundtrip() {
    let input = temp("reorder_in.mtx");
    let output = temp("reorder_out.mtx");
    let ok = dtc()
        .args(["gen", "community", "512", "10", input.to_str().expect("utf8")])
        .status()
        .expect("runs");
    assert!(ok.success());
    let out = dtc()
        .args(["reorder", input.to_str().expect("utf8"), output.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("MeanNnzTC"));
    // The reordered matrix must parse and keep the nnz count.
    let a = dtc_spmm::formats::mtx::read_mtx_file(&input).expect("valid");
    let b = dtc_spmm::formats::mtx::read_mtx_file(&output).expect("valid");
    assert_eq!(a.nnz(), b.nnz());
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = dtc().args(["info", "/nonexistent/nowhere.mtx"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn unknown_generator_is_a_clean_error() {
    let out = dtc()
        .args(["gen", "fractal", "64", "4", temp("nope.mtx").to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown generator"));
}
