//! The `CounterSet` a simulation exports must agree with the aggregate
//! fields the `SimReport` has always carried — one loop computes both, and
//! this cross-check keeps it that way.

use dtc_spmm::baselines::{CusparseSpmm, SpmmKernel, TcgnnSpmm};
use dtc_spmm::core::DtcSpmm;
use dtc_spmm::formats::gen::{community, long_row};
use dtc_spmm::formats::CsrMatrix;
use dtc_spmm::sim::{Device, SimOptions, SimReport};

fn check(name: &str, report: &SimReport, device: &Device) {
    let c = &report.counters;
    let i = &c.instructions;
    assert!((i.hmma - report.hmma_count).abs() < 1e-6, "{name}: hmma");
    assert!((i.imad - report.imad_count).abs() < 1e-6, "{name}: imad");
    assert_eq!(c.total_blocks(), report.num_tbs, "{name}: blocks");
    assert_eq!(c.sm_cycles.len(), device.num_sms, "{name}: SM vector length");
    for (sm, (&a, &b)) in c.sm_cycles.iter().zip(report.sm_busy_cycles()).enumerate() {
        assert!((a - b).abs() < 1e-6, "{name}: sm {sm} busy cycles {a} vs {b}");
    }
    // DRAM bytes follow the sector accounting exactly.
    let expected_dram = c.l2_sector_misses * device.sector_bytes as f64;
    assert!(
        (c.dram_bytes - expected_dram).abs() < 1e-3,
        "{name}: dram {} vs misses×sector {}",
        c.dram_bytes,
        expected_dram
    );
    assert!((c.dram_bytes - report.dram_bytes).abs() < 1e-3, "{name}: dram vs report");
    // Hit rate implied by the sectors matches the simulated one when L2 ran.
    if let Some(hit) = report.l2_hit_rate {
        let b_total = c.l2_sector_hits / hit.max(1e-12);
        assert!(
            c.l2_sector_hits <= b_total + 1e-6,
            "{name}: hits {} exceed implied B sectors {}",
            c.l2_sector_hits,
            b_total
        );
    }
    // Occupancy: one entry per SM, each within [0, effective occupancy].
    assert_eq!(c.sm_occupancy.len(), device.num_sms, "{name}: occupancy length");
    for &o in &c.sm_occupancy {
        assert!(o >= 0.0 && o <= c.effective_occupancy as f64 + 1e-9, "{name}: occupancy {o}");
    }
    // Time derives from the cycle count and clock.
    let implied_ms = report.cycles / (device.sm_clock_ghz * 1e6);
    assert!(
        (report.time_ms - implied_ms).abs() <= 1e-9 * implied_ms.max(1.0),
        "{name}: time {} vs cycles/clock {}",
        report.time_ms,
        implied_ms
    );
    assert!(c.stall_cycles >= 0.0, "{name}: stalls");
    assert!(i.total() > 0.0, "{name}: empty instruction mix");
}

fn engines(a: &CsrMatrix, device: &Device) -> Vec<(String, Box<dyn SpmmKernel>)> {
    vec![
        ("dtc".into(), Box::new(DtcSpmm::builder().device(device.clone()).build(a)) as _),
        ("cusparse".into(), Box::new(CusparseSpmm::new(a)) as _),
        ("tcgnn".into(), Box::new(TcgnnSpmm::new(a).unwrap()) as _),
    ]
}

#[test]
fn counters_consistent_on_long_row() {
    let device = Device::rtx4090();
    let a = long_row(768, 768, 150.0, 1.5, 71);
    for (name, k) in engines(&a, &device) {
        for opts in
            [SimOptions::default(), SimOptions { simulate_l2: true, ..SimOptions::default() }]
        {
            let report = k.simulate_with(96, &device, &opts);
            check(&format!("{name}/l2={}", opts.simulate_l2), &report, &device);
        }
    }
}

#[test]
fn counters_consistent_on_community() {
    let device = Device::rtx3090();
    let a = community(512, 512, 24, 10.0, 0.9, 72);
    for (name, k) in engines(&a, &device) {
        let report = k.simulate_with(128, &device, &SimOptions::default());
        check(&name, &report, &device);
    }
}

#[test]
fn cp_async_sectors_appear_only_with_double_buffering() {
    use dtc_spmm::core::{DtcKernel, KernelOpts};
    let device = Device::rtx4090();
    let a = long_row(512, 512, 120.0, 1.5, 73);
    let with_sdb = DtcKernel::with_opts(&a, KernelOpts::all());
    let without = DtcKernel::with_opts(&a, KernelOpts { sdb: false, ..KernelOpts::all() });
    let mix_on = with_sdb.simulate(64, &device).counters.instructions;
    let mix_off = without.simulate(64, &device).counters.instructions;
    assert!(mix_on.cp_async_sectors > 0.0, "SDB must prefetch A via cp.async");
    assert_eq!(mix_off.cp_async_sectors, 0.0, "no SDB, no cp.async");
    // The A traffic moves between classes but does not disappear.
    assert!(mix_off.ldg_sectors > mix_on.ldg_sectors);
}
