//! Edge cases and failure injection across the whole stack: degenerate
//! shapes, odd N values, hostile devices, empty rows/windows — everything
//! a downstream user can throw at the library must either work or fail
//! with a typed error, never panic.

use dtc_spmm::baselines::{CusparseSpmm, HpSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm};
use dtc_spmm::core::{DtcKernel, DtcSpmm, Selector};
use dtc_spmm::formats::{CsrMatrix, DenseMatrix, MeTcfMatrix};
use dtc_spmm::sim::{cache::L2Cache, sm_for_block, Device};

fn tiny(rows: usize, cols: usize, entries: &[(usize, usize, f32)]) -> CsrMatrix {
    CsrMatrix::from_triplets(rows, cols, entries).expect("valid entries")
}

#[test]
fn empty_matrix_through_full_pipeline() {
    let a = tiny(0, 0, &[]);
    let engine = DtcSpmm::builder().reorder(true).build(&a);
    let c = engine.execute(&DenseMatrix::zeros(0, 8)).expect("empty SpMM works");
    assert_eq!(c.rows(), 0);
    let r = engine.simulate(8, &Device::rtx4090());
    assert_eq!(r.num_tbs, 0);
}

#[test]
fn all_zero_rows_matrix() {
    // Rows exist but carry no non-zeros: windows are empty.
    let a = tiny(64, 64, &[]);
    let b = DenseMatrix::ones(64, 16);
    for k in [
        Box::new(DtcKernel::new(&a)) as Box<dyn SpmmKernel>,
        Box::new(CusparseSpmm::new(&a)),
        Box::new(HpSpmm::new(&a)),
    ] {
        let c = k.execute(&b).expect("zero matrix works");
        assert_eq!(c.max_abs_diff(&DenseMatrix::zeros(64, 16)), 0.0, "{}", k.name());
        let r = k.simulate(16, &Device::rtx4090());
        assert!(r.time_ms.is_finite(), "{}", k.name());
    }
}

#[test]
fn single_entry_matrix() {
    let a = tiny(1, 1, &[(0, 0, 3.0)]);
    let b = DenseMatrix::from_vec(1, 1, vec![2.0]).expect("1x1");
    let engine = DtcSpmm::new(&a);
    assert_eq!(engine.execute(&b).expect("works").get(0, 0), 6.0);
}

#[test]
fn dense_single_row_matrix() {
    // One fully dense row among empties: the extreme of skew.
    let t: Vec<(usize, usize, f32)> = (0..256).map(|c| (5, c, 1.0)).collect();
    let a = tiny(64, 256, &t);
    let b = DenseMatrix::ones(256, 8);
    let c = DtcKernel::new(&a).execute(&b).expect("works");
    assert!((c.get(5, 0) - 256.0).abs() < 0.5);
    assert_eq!(c.get(4, 0), 0.0);
    // Selector must see extreme imbalance.
    let d = Selector::default().decide(&MeTcfMatrix::from_csr(&a), &Device::rtx4090());
    assert!(d.approximation_ratio > 1.0);
}

#[test]
fn odd_n_values_simulate_and_execute() {
    let a = tiny(32, 32, &[(0, 1, 1.0), (17, 30, 2.0), (31, 0, 3.0)]);
    let device = Device::rtx4090();
    for n in [1usize, 3, 7, 17, 33, 100] {
        let b = DenseMatrix::ones(32, n);
        let c = DtcKernel::new(&a).execute(&b).expect("odd N works");
        assert_eq!(c.cols(), n);
        let r = DtcKernel::new(&a).simulate(n, &device);
        assert!(r.time_ms > 0.0 && r.time_ms.is_finite(), "n={n}");
        let r2 = CusparseSpmm::new(&a).simulate(n, &device);
        assert!(r2.time_ms.is_finite(), "n={n}");
    }
}

#[test]
fn dimension_mismatch_is_an_error_not_a_panic() {
    let a = tiny(8, 8, &[(0, 0, 1.0)]);
    let b = DenseMatrix::zeros(9, 4);
    assert!(DtcKernel::new(&a).execute(&b).is_err());
    assert!(CusparseSpmm::new(&a).execute(&b).is_err());
    assert!(SputnikSpmm::new(&a).expect("small").execute(&b).is_err());
    assert!(TcgnnSpmm::new(&a).expect("square").execute(&b).is_err());
}

#[test]
fn hostile_device_configurations() {
    let a = tiny(64, 64, &[(0, 0, 1.0), (40, 63, 2.0)]);
    // One-SM device.
    let mut one_sm = Device::rtx4090();
    one_sm.num_sms = 1;
    let r = DtcKernel::new(&a).simulate(16, &one_sm);
    assert!(r.time_ms.is_finite() && r.sm_busy_cycles().len() == 1);
    // Odd SM count: the generalized eq. (1) must stay in range.
    for nsm in [1usize, 2, 3, 7, 41, 82, 127, 128] {
        for blk in 0..500 {
            let sm = sm_for_block(blk, nsm);
            assert!(sm < nsm, "policy out of range for nsm={nsm} blk={blk}");
        }
    }
    // Tiny L2.
    let mut small_l2 = Device::rtx4090();
    small_l2.l2_bytes = 1024;
    let r = DtcKernel::new(&a).simulate_with_l2(16, &small_l2);
    let hit = r.l2_hit_rate.expect("simulated");
    assert!((0.0..=1.0).contains(&hit));
}

#[test]
fn l2_cache_degenerate_geometries() {
    // 1 set, 1 way: every distinct address evicts.
    let mut c = L2Cache::with_geometry(1, 1);
    assert!(!c.access(1));
    assert!(!c.access(2));
    assert!(!c.access(1));
    assert!(c.access(1));
    // Zero-ish geometry clamps to 1.
    let mut c = L2Cache::with_geometry(0, 0);
    assert!(!c.access(9));
    assert!(c.access(9));
}

#[test]
fn selector_extremes() {
    let device = Device::rtx4090();
    let s = Selector::default();
    // All-empty windows.
    let d = s.decide_from_counts(&[0, 0, 0], &device);
    assert!(d.approximation_ratio.is_finite());
    // One window.
    let d = s.decide_from_counts(&[1000], &device);
    assert!(d.approximation_ratio > 1.0);
    // Gigantic uniform workload: AR near 1.
    let counts = vec![10usize; 128 * 6 * 50];
    let d = s.decide_from_counts(&counts, &device);
    assert!(d.approximation_ratio < 1.2, "AR={}", d.approximation_ratio);
}

#[test]
fn non_square_matrices_work_where_supported() {
    let a = tiny(16, 64, &[(0, 63, 1.0), (15, 0, 2.0)]);
    let b = DenseMatrix::ones(64, 8);
    // DTC, cuSPARSE, HP handle rectangular; TCGNN must refuse.
    assert!(DtcKernel::new(&a).execute(&b).is_ok());
    assert!(CusparseSpmm::new(&a).execute(&b).is_ok());
    assert!(TcgnnSpmm::new(&a).is_err());
}

#[test]
fn nan_and_infinity_values_propagate_not_panic() {
    let a = tiny(4, 4, &[(0, 0, f32::NAN), (1, 1, f32::INFINITY), (2, 2, 1.0)]);
    let b = DenseMatrix::ones(4, 2);
    let c = DtcKernel::new(&a).execute(&b).expect("executes");
    assert!(c.get(0, 0).is_nan());
    assert_eq!(c.get(1, 0), f32::INFINITY);
    assert_eq!(c.get(2, 0), 1.0);
}

#[test]
fn reorder_on_degenerate_inputs() {
    use dtc_spmm::reorder::{Reorderer, TcaReorderer};
    for a in [tiny(0, 0, &[]), tiny(1, 1, &[]), tiny(5, 5, &[(2, 2, 1.0)])] {
        let perm = TcaReorderer::default().reorder(&a);
        assert_eq!(perm.len(), a.rows());
    }
}
