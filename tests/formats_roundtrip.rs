//! Property tests: every storage format is a lossless encoding of the
//! matrix, and SGT condensing preserves the non-zero multiset.

use dtc_spmm::formats::{
    BellMatrix, Condensed, CooMatrix, CsrMatrix, CvseMatrix, MeTcfMatrix, TcfMatrix,
};
use proptest::prelude::*;

/// Strategy: a small random sparse matrix as (rows, cols, triplets).
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48, 1usize..48).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            // Values strictly positive: duplicate coordinates sum, and a sum of
            // zero would be a stored zero BELL/CVSE cannot represent.
            (0..rows, 0..cols, 0i32..8).prop_map(|(r, c, v)| (r, c, v as f32 * 0.5 + 0.25)),
            0..120,
        )
        .prop_map(move |triplets| {
            CsrMatrix::from_triplets(rows, cols, &triplets).expect("triplets in range")
        })
    })
}

/// Strategy: a small random *square* matrix (for TCF).
fn arb_square() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n, 0..n, 0i32..8).prop_map(|(r, c, v)| (r, c, v as f32 * 0.5 + 0.25)),
            0..120,
        )
        .prop_map(move |triplets| {
            CsrMatrix::from_triplets(n, n, &triplets).expect("triplets in range")
        })
    })
}

proptest! {
    #[test]
    fn coo_csr_roundtrip(a in arb_matrix()) {
        prop_assert_eq!(&a.to_coo().to_csr(), &a);
        let coo = CooMatrix::from_triplets(a.rows(), a.cols(), &a.iter().collect::<Vec<_>>())
            .expect("valid");
        prop_assert_eq!(&coo.to_csr(), &a);
    }

    #[test]
    fn condensed_roundtrip_and_nnz(a in arb_matrix()) {
        let c = Condensed::from_csr(&a);
        prop_assert_eq!(c.nnz(), a.nnz());
        prop_assert_eq!(&c.to_csr().expect("valid"), &a);
        // Block partition sums to the block count.
        prop_assert_eq!(c.window_block_counts().iter().sum::<usize>(), c.num_tc_blocks());
    }

    #[test]
    fn metcf_roundtrip(a in arb_matrix()) {
        let m = MeTcfMatrix::from_csr(&a);
        prop_assert_eq!(&m.to_csr().expect("valid"), &a);
        prop_assert_eq!(m.nnz(), a.nnz());
    }

    #[test]
    fn tcf_roundtrip(a in arb_square()) {
        let t = TcfMatrix::from_csr(&a).expect("square");
        prop_assert_eq!(&t.to_csr().expect("valid"), &a);
    }

    #[test]
    fn bell_roundtrip(a in arb_matrix()) {
        for bs in [4usize, 16] {
            let bell = BellMatrix::from_csr(&a, bs, u64::MAX).expect("no budget");
            prop_assert_eq!(&bell.to_csr().expect("valid"), &a);
        }
    }

    #[test]
    fn cvse_roundtrip(a in arb_matrix()) {
        for vlen in [4usize, 8] {
            let v = CvseMatrix::from_csr(&a, vlen).expect("positive vlen");
            prop_assert_eq!(&v.to_csr().expect("valid"), &a);
        }
    }

    #[test]
    fn footprint_formulas(a in arb_square()) {
        let fp = dtc_spmm::formats::footprint::footprint_of(&a);
        // CSR formula is exact; TCF always exceeds CSR once nnz > 0
        // (Observation 1); ME-TCF beats TCF whenever blocks average at
        // least two non-zeros (adversarial 1-nnz-per-block matrices can
        // invert it — real matrices do not, see dtc-datasets tests).
        prop_assert_eq!(fp.csr, a.rows() as u64 + 1 + a.nnz() as u64);
        if a.nnz() > 0 {
            prop_assert!(fp.tcf > fp.csr);
        }
        let blocks = dtc_spmm::formats::Condensed::from_csr(&a).num_tc_blocks();
        if blocks > 0 && a.nnz() >= 4 * blocks {
            prop_assert!(fp.metcf <= fp.tcf, "metcf={} tcf={}", fp.metcf, fp.tcf);
        }
    }
}
