//! Regression fixtures for the bug cluster surfaced by the `dtc-fuzz`
//! differential sweep, plus the sweep's own determinism guarantees.
//!
//! Each fixture below is the *shrunk* reproducer of a real failure the
//! fuzzer found (the `M.. K.. N..` comments quote the minimized fixture
//! codes from the sweep) and fails on the pre-fix code. The conversion-
//! cache collision regression lives next to the cache
//! (`crates/core/src/cache.rs`) because it needs the private keyed lookup.

use dtc_spmm::baselines::{BlockSpmm, SpmmKernel, VectorSparseSpmm};
use dtc_spmm::core::DtcSpmm;
use dtc_spmm::formats::tf32::round_to_tf32;
use dtc_spmm::formats::{CsrMatrix, DenseMatrix, MeTcfMatrix};
use dtc_spmm::fuzz::{run_sweep, SweepConfig};
use dtc_spmm::sim::Device;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that set the process-global `dtc-par` thread override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` under a fixed thread count, restoring the default after.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    dtc_par::set_threads(Some(threads));
    let r = f();
    dtc_par::set_threads(None);
    r
}

/// Fuzz fixture `M1 K1 N1 | A (0,0,0.0) | B -inf`: Block-SpMM skipped
/// stored entries whose value was exactly `0.0`, conflating them with ELL
/// padding — so the IEEE-mandated `0.0 x -inf = NaN` product vanished and
/// the kernel returned `0.0` where every other kernel returned NaN.
#[test]
fn blockspmm_explicit_zero_times_inf_is_nan() {
    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 0.0)]).unwrap();
    let b = DenseMatrix::from_fn(1, 1, |_, _| f32::NEG_INFINITY);
    let c = BlockSpmm::new(&a, 32, u64::MAX).unwrap().execute(&b).unwrap();
    assert!(c.get(0, 0).is_nan(), "stored 0.0 x -inf must be NaN, got {}", c.get(0, 0));
}

/// The same fixture through VectorSparse: CVSE vector padding was likewise
/// conflated with explicit stored zeros.
#[test]
fn vectorsparse_explicit_zero_times_inf_is_nan() {
    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 0.0)]).unwrap();
    let b = DenseMatrix::from_fn(1, 1, |_, _| f32::INFINITY);
    for vlen in [4, 8] {
        let c = VectorSparseSpmm::new(&a, vlen).unwrap().execute(&b).unwrap();
        assert!(c.get(0, 0).is_nan(), "vlen {vlen}: stored 0.0 x inf must be NaN");
    }
}

/// Explicit zeros must also survive the BELL/CVSE round-trip: `to_csr`
/// previously dropped them (it re-derived structure from `v != 0.0`).
#[test]
fn explicit_zeros_survive_padded_format_roundtrips() {
    let a = CsrMatrix::from_triplets(3, 5, &[(0, 1, 0.0), (2, 4, -1.5), (1, 0, 0.0)]).unwrap();
    let bell = dtc_spmm::formats::BellMatrix::from_csr(&a, 2, u64::MAX).unwrap();
    assert_eq!(bell.to_csr().unwrap(), a, "BELL round-trip lost explicit zeros");
    let cvse = dtc_spmm::formats::CvseMatrix::from_csr(&a, 4).unwrap();
    assert_eq!(cvse.to_csr().unwrap(), a, "CVSE round-trip lost explicit zeros");
}

/// Fuzz fixture `M1 K1 N1 | A (0,0,NaN) | B 1.0`: serial and parallel
/// ME-TCF conversion of a NaN-carrying matrix must agree *bitwise* (the
/// sweep compares conversions with `to_bits`, where `NaN != NaN` under
/// `PartialEq` would hide real divergence).
#[test]
fn nan_values_convert_bit_identically_across_paths() {
    let _guard = override_lock();
    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, f32::NAN)]).unwrap();
    let serial = with_threads(1, || MeTcfMatrix::from_csr(&a));
    let parallel = with_threads(7, || MeTcfMatrix::from_csr(&a));
    let s: Vec<u32> = serial.values().iter().map(|v| v.to_bits()).collect();
    let p: Vec<u32> = parallel.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(s, p);
    let round = serial.to_csr().unwrap();
    assert!(round.values()[0].is_nan(), "NaN must survive the ME-TCF round-trip");
}

/// Fuzz fixture `M1 K1 N1 | A (0,0,1.1754942e-38) | B 1e30`: the largest
/// f32 subnormal previously rounded *up* to the min-normal inside
/// `round_to_tf32` instead of flushing, turning a should-be-zero product
/// into ~1.18e-8.
#[test]
fn largest_subnormal_flushes_instead_of_rounding_up() {
    let max_subnormal = f32::from_bits(0x007F_FFFF);
    assert_eq!(round_to_tf32(max_subnormal).to_bits(), 0);
    assert_eq!(round_to_tf32(-max_subnormal).to_bits(), 0x8000_0000);

    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, max_subnormal)]).unwrap();
    let b = DenseMatrix::from_fn(1, 1, |_, _| 1.0e30);
    let c = DtcSpmm::new(&a).execute(&b).unwrap();
    assert_eq!(c.get(0, 0), 0.0, "subnormal input must flush to zero before the multiply");
}

/// Zero-nnz matrices at shapes exercising both conversion paths (161 rows
/// is >= 8 windows, enough for the parallel merge) must round-trip and run
/// the full pipeline.
#[test]
fn zero_nnz_pipeline_and_roundtrip() {
    let _guard = override_lock();
    for (rows, cols) in [(1, 1), (17, 3), (161, 129)] {
        let a = CsrMatrix::from_triplets(rows, cols, &[]).unwrap();
        let m = with_threads(2, || MeTcfMatrix::from_csr(&a));
        assert_eq!(m.num_tc_blocks(), 0);
        assert_eq!(m.to_csr().unwrap(), a);
        let b = DenseMatrix::ones(cols, 7);
        let c = DtcSpmm::new(&a).execute(&b).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}

/// The sweep's headline determinism guarantee: the same config produces a
/// byte-identical `FUZZ.json` at any `DTC_THREADS`, shrinking included.
#[test]
fn fuzz_report_identical_across_thread_counts() {
    let _guard = override_lock();
    let config = SweepConfig {
        master_seed: 0xD7C5_B004,
        num_cases: 24,
        device: Device::rtx4090(),
        shrink: true,
    };
    let baseline = with_threads(1, || run_sweep(&config).to_json());
    for threads in [2, 7] {
        let json = with_threads(threads, || run_sweep(&config).to_json());
        assert_eq!(baseline, json, "FUZZ.json diverged at {threads} threads");
    }
}

/// A smoke-sized slice of the shipping sweep seed must be failure-free —
/// the CI gate (`fuzz --smoke`) asserts the same thing from the binary.
#[test]
fn shipping_seed_prefix_is_clean() {
    let report = run_sweep(&SweepConfig {
        master_seed: 0xD7C5_B004,
        num_cases: 32,
        device: Device::rtx4090(),
        shrink: false,
    });
    assert_eq!(report.cases_run, 32);
    assert!(!report.has_failures(), "{}", report.to_json());
}
