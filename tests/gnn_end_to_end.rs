//! End-to-end GNN case-study tests: training converges on every backend,
//! all backends agree numerically, and the simulated time composition is
//! consistent.

use dtc_spmm::datasets::igb_datasets;
use dtc_spmm::formats::gen::community;
use dtc_spmm::formats::DenseMatrix;
use dtc_spmm::gnn::{
    train_gcn, DglGnnBackend, DtcGnnBackend, GnnBackend, PygGatherScatterBackend,
    PygSparseTensorBackend, TcgnnGnnBackend, TrainConfig,
};
use dtc_spmm::sim::Device;

fn config() -> TrainConfig {
    TrainConfig { epochs: 15, hidden: 16, features: 8, classes: 4, lr: 0.1, seed: 11 }
}

#[test]
fn training_converges_on_every_backend() {
    let g = community(128, 128, 8, 6.0, 0.85, 31);
    let device = Device::rtx4090();
    let backends: Vec<Box<dyn GnnBackend>> = vec![
        Box::new(DtcGnnBackend::new(&g)),
        Box::new(DglGnnBackend::new(&g)),
        Box::new(PygGatherScatterBackend::new(&g)),
        Box::new(PygSparseTensorBackend::new(&g)),
        Box::new(TcgnnGnnBackend::new(&g).unwrap()),
    ];
    for b in backends {
        let r = train_gcn(&g, b.as_ref(), &config(), &device);
        assert!(
            r.losses.last().unwrap() < r.losses.first().unwrap(),
            "{} failed to learn: {:?}",
            r.backend,
            r.losses
        );
        assert!(r.epoch_ms > 0.0 && r.total_ms > r.epoch_ms, "{}", r.backend);
    }
}

#[test]
fn backends_agree_on_spmm_numerics() {
    let g = community(96, 96, 6, 5.0, 0.85, 32);
    let b = DenseMatrix::from_fn(96, 8, |r, c| ((r * 3 + c) % 7) as f32 * 0.2);
    let reference = g.spmm_reference(&b).unwrap();
    let backends: Vec<Box<dyn GnnBackend>> = vec![
        Box::new(DtcGnnBackend::new(&g)),
        Box::new(TcgnnGnnBackend::new(&g).unwrap()),
        Box::new(DglGnnBackend::new(&g)),
    ];
    for bk in backends {
        let c = bk.spmm(false, &b).unwrap();
        assert!(c.max_abs_diff(&reference) < 0.01, "{} diverged", bk.name());
        // Transposed SpMM against the transposed reference.
        let ct = bk.spmm(true, &b).unwrap();
        let t_ref = g.transposed().spmm_reference(&b).unwrap();
        assert!(ct.max_abs_diff(&t_ref) < 0.01, "{} transposed diverged", bk.name());
    }
}

#[test]
fn dtc_gcn_beats_frameworks_on_igb() {
    // Fig 16 shape: DTC-GCN's simulated 200-epoch time beats DGL and both
    // PyG modes on the IGB stand-ins.
    let device = Device::rtx4090();
    let cfg =
        TrainConfig { epochs: 200, hidden: 128, features: 64, classes: 8, lr: 0.05, seed: 13 };
    let cheap = TrainConfig { epochs: 2, ..cfg };
    for d in igb_datasets() {
        let g = d.matrix();
        let total = |b: &dyn GnnBackend| {
            let r = train_gcn(&g, b, &cheap, &device);
            r.setup_ms + cfg.epochs as f64 * r.epoch_ms
        };
        let dtc = total(&DtcGnnBackend::new(&g));
        let dgl = total(&DglGnnBackend::new(&g));
        let pyg_gs = total(&PygGatherScatterBackend::new(&g));
        let pyg_st = total(&PygSparseTensorBackend::new(&g));
        assert!(dtc < dgl, "{}: dtc={dtc} dgl={dgl}", d.name);
        assert!(dtc < pyg_gs, "{}: dtc={dtc} pyg_gs={pyg_gs}", d.name);
        assert!(dtc < pyg_st, "{}: dtc={dtc} pyg_st={pyg_st}", d.name);
    }
}
