//! Property test: every SpMM engine in the workspace computes the same
//! product as the FP32 CSR reference, within TF32 tolerance for
//! Tensor-Core paths.

use dtc_spmm::baselines::{
    BlockSpmm, CusparseSpmm, FlashLlmSpmm, HpSpmm, SparseTirSpmm, SpartaSpmm, SpmmKernel,
    SputnikSpmm, TcgnnSpmm, VectorSparseSpmm,
};
use dtc_spmm::core::{BalancedDtcKernel, DtcKernel, DtcSpmm, KernelOpts};
use dtc_spmm::formats::tf32::TF32_UNIT_ROUNDOFF;
use dtc_spmm::formats::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn arb_square() -> impl Strategy<Value = CsrMatrix> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n, 0..n, -4i32..4).prop_map(|(r, c, v)| (r, c, v as f32 * 0.5)),
            0..100,
        )
        .prop_map(move |t| CsrMatrix::from_triplets(n, n, &t).expect("in range"))
    })
}

fn arb_b(k: usize) -> impl Strategy<Value = DenseMatrix> {
    (1usize..12).prop_flat_map(move |n| {
        proptest::collection::vec(-2.0f32..2.0, k * n)
            .prop_map(move |data| DenseMatrix::from_vec(k, n, data).expect("len matches"))
    })
}

/// Worst-case absolute error bound: each output element accumulates at
/// most `max_row_len` products, each with <= 2 TF32 roundings of relative
/// size 2^-11 on operands bounded by the actual data magnitudes.
fn tf32_bound(a: &CsrMatrix, b: &DenseMatrix) -> f32 {
    let max_row = (0..a.rows()).map(|r| a.row_len(r)).max().unwrap_or(0) as f32;
    let max_a = a.values().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let max_b = b.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    (max_row * max_a * max_b * 3.0).max(1.0) * TF32_UNIT_ROUNDOFF + 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_engine_matches_reference((a, b) in arb_square().prop_flat_map(|a| {
        let k = a.cols();
        (Just(a), arb_b(k))
    })) {
        let reference = a.spmm_reference(&b).expect("dims agree");
        let bound = tf32_bound(&a, &b);
        let engines: Vec<(&str, DenseMatrix)> = vec![
            ("cusparse", CusparseSpmm::new(&a).execute(&b).expect("ok")),
            ("sputnik", SputnikSpmm::new(&a).expect("small").execute(&b).expect("ok")),
            ("hpspmm", HpSpmm::new(&a).execute(&b).expect("ok")),
            ("sparsetir", SparseTirSpmm::new(&a).execute(&b).expect("ok")),
            ("tcgnn", TcgnnSpmm::new(&a).expect("square").execute(&b).expect("ok")),
            ("blockspmm", BlockSpmm::new(&a, 8, u64::MAX).expect("fits").execute(&b).expect("ok")),
            ("vectorsparse", VectorSparseSpmm::new(&a, 4).expect("ok").execute(&b).expect("ok")),
            ("flashllm", FlashLlmSpmm::new(&a, u64::MAX).expect("fits").execute(&b).expect("ok")),
            ("sparta", SpartaSpmm::new(&a, 50_000).expect("small").execute(&b).expect("ok")),
            ("dtc", DtcKernel::new(&a).execute(&b).expect("ok")),
            ("dtc-balanced", BalancedDtcKernel::new(&a).execute(&b).expect("ok")),
            ("dtc-pipeline", DtcSpmm::builder().reorder(true).build(&a).execute(&b).expect("ok")),
        ];
        for (name, c) in engines {
            let diff = c.max_abs_diff(&reference);
            prop_assert!(diff <= bound, "{name} deviates {diff} > {bound}");
        }
    }

    #[test]
    fn ablation_variants_agree_numerically((a, b) in arb_square().prop_flat_map(|a| {
        let k = a.cols();
        (Just(a), arb_b(k))
    })) {
        // Kernel optimizations are performance-only: all ablation rungs
        // must produce bit-identical outputs.
        let all = DtcKernel::with_opts(&a, KernelOpts::all()).execute(&b).expect("ok");
        for (label, opts) in KernelOpts::ablation_ladder() {
            let c = DtcKernel::with_opts(&a, opts).execute(&b).expect("ok");
            prop_assert_eq!(&c, &all, "{} changed numerics", label);
        }
    }
}
