//! Pins `docs/LINTS.md` to the generator in `dtc_verify::docs`.
//!
//! The reference is generated, never hand-edited; this test fails the
//! build when either the registries or the checked-in file change without
//! the other. Regenerate with
//! `cargo run --release -p dtc-bench --bin tracelint -- --lints-md`.

#[test]
fn checked_in_lints_md_matches_the_generator() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/LINTS.md");
    let on_disk = std::fs::read_to_string(path).expect("docs/LINTS.md must be checked in");
    let generated = dtc_spmm::verify::lints_markdown();
    assert_eq!(
        on_disk, generated,
        "docs/LINTS.md is stale — regenerate with `tracelint --lints-md`"
    );
}
