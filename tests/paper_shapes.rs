//! Integration tests asserting the paper's headline result *shapes* on
//! the scaled representative datasets — who wins, where, and by roughly
//! what kind of factor. These are the claims EXPERIMENTS.md reports.

use dtc_spmm::baselines::{CusparseSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm};
use dtc_spmm::core::{BalancedDtcKernel, DtcKernel, DtcSpmm, KernelChoice, KernelOpts, Selector};
use dtc_spmm::datasets::{representative, scaled_device, DatasetKind};
use dtc_spmm::formats::MeTcfMatrix;
use dtc_spmm::sim::Device;

const N: usize = 128;

fn device() -> Device {
    scaled_device(Device::rtx4090())
}

#[test]
fn dtc_is_fastest_general_method_on_all_eight() {
    // Fig 11a: DTC-SpMM achieves the highest speedup among the general
    // SpMM methods (cuSPARSE, TCGNN, Sputnik) on all 8 matrices.
    let device = device();
    for d in representative() {
        let a = d.matrix();
        let dtc = DtcSpmm::builder().device(device.clone()).build(&a).simulate(N, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(N, &device).time_ms;
        let tcg = TcgnnSpmm::new(&a).unwrap().simulate(N, &device).time_ms;
        let spk = SputnikSpmm::new(&a).unwrap().simulate(N, &device).time_ms;
        assert!(dtc < cus, "{}: dtc={dtc} cus={cus}", d.name);
        assert!(dtc < tcg, "{}: dtc={dtc} tcgnn={tcg}", d.name);
        assert!(dtc < spk, "{}: dtc={dtc} sputnik={spk}", d.name);
    }
}

#[test]
fn type_ii_speedups_exceed_type_i() {
    // Fig 11a: "the relative speedup is even higher (up to 3.29x) on
    // Type II matrices".
    let device = device();
    let mut type_i = Vec::new();
    let mut type_ii = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let dtc = DtcSpmm::builder().device(device.clone()).build(&a).simulate(N, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(N, &device).time_ms;
        match d.kind {
            DatasetKind::TypeI => type_i.push(cus / dtc),
            DatasetKind::TypeII => type_ii.push(cus / dtc),
            DatasetKind::GnnGraph => {}
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(avg(&type_ii) > avg(&type_i) * 1.5, "type_ii={:?} type_i={:?}", type_ii, type_i);
    // And at least one Type II speedup lands in the paper's 2-5x band.
    assert!(type_ii.iter().any(|&s| s > 2.0 && s < 8.0), "{type_ii:?}");
}

#[test]
fn tcgnn_loses_to_cusparse_on_type_ii_only() {
    // §1 + Fig 11a: TCGNN is competitive on Type I but slower than
    // cuSPARSE on large matrices with long rows.
    let device = device();
    for d in representative() {
        let a = d.matrix();
        let tcg = TcgnnSpmm::new(&a).unwrap().simulate(N, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(N, &device).time_ms;
        match d.kind {
            DatasetKind::TypeI => {
                assert!(tcg < cus * 1.5, "{}: TCGNN not competitive", d.name)
            }
            DatasetKind::TypeII => {
                assert!(tcg > cus, "{}: TCGNN should lose on Type II", d.name)
            }
            DatasetKind::GnnGraph => {}
        }
    }
}

#[test]
fn tcgnn_tc_utilization_below_8_percent() {
    // Observation 3 / Table 2.
    let device = device();
    for d in representative() {
        let a = d.matrix();
        let r = TcgnnSpmm::new(&a).unwrap().simulate(N, &device);
        assert!(r.tc_utilization < 0.10, "{}: util {}", d.name, r.tc_utilization);
    }
}

#[test]
fn imad_ratio_explodes_on_type_ii() {
    // Table 2: #IMAD/#HMMA is 13-15 on Type I vs 46-98 on Type II.
    let device = device();
    let mut max_type_i = 0.0f64;
    let mut min_type_ii = f64::MAX;
    for d in representative() {
        let a = d.matrix();
        let r = TcgnnSpmm::new(&a).unwrap().simulate(N, &device);
        match d.kind {
            DatasetKind::TypeI => max_type_i = max_type_i.max(r.imad_per_hmma),
            DatasetKind::TypeII => min_type_ii = min_type_ii.min(r.imad_per_hmma),
            DatasetKind::GnnGraph => {}
        }
    }
    assert!(
        min_type_ii > 2.0 * max_type_i,
        "type II ratios ({min_type_ii}) should dwarf type I ({max_type_i})"
    );
}

#[test]
fn dtc_utilization_and_ratio_beat_tcgnn_everywhere() {
    // Fig 14: DTC's TC pipeline utilization is higher and its IMAD/HMMA
    // ratio lower than TCGNN's on every dataset.
    let device = device();
    for d in representative() {
        let a = d.matrix();
        let dtc = DtcKernel::new(&a).simulate(N, &device);
        let tcg = TcgnnSpmm::new(&a).unwrap().simulate(N, &device);
        assert!(dtc.tc_utilization > tcg.tc_utilization, "{}", d.name);
        assert!(dtc.imad_per_hmma < tcg.imad_per_hmma, "{}", d.name);
    }
}

#[test]
fn ablation_is_monotone_on_type_ii() {
    // Fig 14: each optimization helps (or is neutral) on long-row inputs.
    let device = device();
    for abbr in ["reddit", "ddi", "protein"] {
        let d = representative().into_iter().find(|d| d.abbr == abbr).unwrap();
        let a = d.matrix();
        let mut prev = f64::INFINITY;
        for (label, opts) in KernelOpts::ablation_ladder() {
            let t = DtcKernel::with_opts(&a, opts).simulate(N, &device).time_ms;
            assert!(t <= prev * 1.01, "{abbr}/{label}: {t} vs {prev}");
            prev = t;
        }
    }
}

#[test]
fn selector_chooses_balanced_for_type_ii_and_base_for_yeasth() {
    // Fig 15 + §4.5.2.
    let device = device();
    let selector = Selector::default();
    for d in representative() {
        let a = d.matrix();
        let decision = selector.decide(&MeTcfMatrix::from_csr(&a), &device);
        match d.abbr.as_str() {
            "reddit" | "ddi" => assert_eq!(
                decision.choice,
                KernelChoice::Balanced,
                "{}: AR {}",
                d.name,
                decision.approximation_ratio
            ),
            "YH" => assert_eq!(decision.choice, KernelChoice::Base, "{}", d.name),
            _ => {}
        }
    }
}

#[test]
fn strict_balance_wins_big_on_ddi() {
    // Fig 15a: +54.31% on ddi in the paper.
    let device = device();
    let d = representative().into_iter().find(|d| d.abbr == "ddi").unwrap();
    let a = d.matrix();
    let base = DtcKernel::new(&a).simulate(N, &device).time_ms;
    let balanced = BalancedDtcKernel::new(&a).simulate(N, &device).time_ms;
    assert!(base / balanced > 1.2, "gain only {:.2}x", base / balanced);
}

#[test]
fn metcf_saves_memory_vs_csr_and_tcf() {
    // Observation 1 + §5.3: TCF far above CSR everywhere; ME-TCF close to
    // CSR per matrix and below it on average (the paper reports a 6.42 %
    // average saving before reordering).
    let mut savings = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let fp = dtc_spmm::formats::footprint::footprint_of(&a);
        assert!(fp.tcf_vs_csr_pct() > 100.0, "{}", d.name);
        assert!(
            (fp.metcf as f64) < fp.csr as f64 * 1.15,
            "{}: metcf {} csr {}",
            d.name,
            fp.metcf,
            fp.csr
        );
        savings.push(fp.metcf_saving_vs_csr_pct());
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(avg > 0.0, "average ME-TCF saving {avg}% should be positive");
}

#[test]
fn rtx3090_slightly_slower_overall() {
    // Table 3: the RTX3090 shows the same trend with lower absolute
    // throughput (fewer SMs, lower clock).
    let d4090 = scaled_device(Device::rtx4090());
    let d3090 = scaled_device(Device::rtx3090());
    let a = representative()[0].matrix();
    let t4090 = DtcKernel::new(&a).simulate(N, &d4090).time_ms;
    let t3090 = DtcKernel::new(&a).simulate(N, &d3090).time_ms;
    assert!(t3090 > t4090, "3090 {} vs 4090 {}", t3090, t4090);
}
