//! Determinism guarantees of the parallel execution layer (`dtc-par`).
//!
//! The sharding scheme (contiguous row-window bands, order-preserving
//! collection, disjoint output strips) promises **bit-identical** results
//! for every thread count — not merely "close": floating-point reduction
//! order never changes, so `to_bits()` equality is asserted throughout.

use dtc_spmm::core::{
    clear_conversion_cache, conversion_cache_stats, BalancedDtcKernel, DtcKernel, DtcSpmm,
    KernelOpts, Selector, SpmmKernel,
};
use dtc_spmm::formats::{gen, CsrMatrix, DenseMatrix, MeTcfMatrix, Precision};
use dtc_spmm::sim::Device;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Thread counts exercised everywhere: serial, even, odd (uneven bands),
/// and more threads than most test inputs have windows.
const THREADS: [usize; 4] = [1, 2, 7, 16];

/// The thread override in `dtc-par` is process-global; tests that mutate it
/// serialize on this lock so the harness's own parallelism cannot interleave
/// two overrides.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` under a fixed thread count, restoring the default after.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    dtc_par::set_threads(Some(threads));
    let r = f();
    dtc_par::set_threads(None);
    r
}

#[track_caller]
fn assert_bits_identical(serial: &DenseMatrix, parallel: &DenseMatrix, ctx: &str) {
    assert_eq!(serial.rows(), parallel.rows(), "{ctx}: row count");
    assert_eq!(serial.cols(), parallel.cols(), "{ctx}: col count");
    for (i, (s, p)) in serial.as_slice().iter().zip(parallel.as_slice()).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{ctx}: element {i} differs — serial {s} vs parallel {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole acceptance: parallel `execute` is bit-identical to serial
    /// for random matrices, every thread count, and all three precisions,
    /// on both runtime kernels.
    #[test]
    fn parallel_execute_bit_identical_to_serial(
        rows in 1usize..300,
        cols in 1usize..200,
        fill in 1usize..8,
        n in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let _guard = override_lock();
        let nnz = (rows * cols / 64 * fill).max(1).min(rows * cols);
        let a = gen::uniform(rows, cols, nnz, seed);
        let b = DenseMatrix::from_fn(cols, n, |r, c| {
            ((r * 31 + c * 7 + seed as usize) % 13) as f32 * 0.25 - 1.5
        });
        let metcf = MeTcfMatrix::from_csr(&a);
        let distinct = a.col_idx().iter().collect::<std::collections::HashSet<_>>().len();
        for precision in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            let base = DtcKernel::from_metcf(metcf.clone(), distinct, KernelOpts::all())
                .with_precision(precision);
            let balanced = BalancedDtcKernel::from_metcf(metcf.clone(), distinct, KernelOpts::all())
                .with_precision(precision);
            let serial_base = with_threads(1, || base.execute(&b)).unwrap();
            let serial_bal = with_threads(1, || balanced.execute(&b)).unwrap();
            for threads in THREADS {
                let par_base = with_threads(threads, || base.execute(&b)).unwrap();
                assert_bits_identical(
                    &serial_base,
                    &par_base,
                    &format!("DtcKernel {precision:?} threads={threads}"),
                );
                let par_bal = with_threads(threads, || balanced.execute(&b)).unwrap();
                assert_bits_identical(
                    &serial_bal,
                    &par_bal,
                    &format!("BalancedDtcKernel {precision:?} threads={threads}"),
                );
            }
        }
    }

    /// The parallel CSR reference path (shared by the cuSPARSE and Sputnik
    /// baselines) and the parallel ME-TCF conversion are likewise
    /// thread-count-invariant.
    #[test]
    fn reference_and_conversion_thread_invariant(
        rows in 1usize..400,
        cols in 1usize..200,
        fill in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let _guard = override_lock();
        let nnz = (rows * cols / 32 * fill).max(1).min(rows * cols);
        let a = gen::uniform(rows, cols, nnz, seed);
        let b = DenseMatrix::from_fn(cols, 17, |r, c| ((r + 3 * c) % 11) as f32 * 0.5 - 2.0);
        let serial_c = with_threads(1, || a.spmm_reference(&b)).unwrap();
        let serial_metcf = with_threads(1, || MeTcfMatrix::from_csr(&a));
        for threads in THREADS {
            let par_c = with_threads(threads, || a.spmm_reference(&b)).unwrap();
            assert_bits_identical(&serial_c, &par_c, &format!("spmm_reference threads={threads}"));
            let par_metcf = with_threads(threads, || MeTcfMatrix::from_csr(&a));
            prop_assert_eq!(&serial_metcf, &par_metcf);
        }
    }
}

/// Satellite: the Selector must return the same `SelectorDecision` — every
/// field, not just the choice — regardless of the thread count, for both a
/// balanced and a skewed input.
#[test]
fn selector_decision_independent_of_thread_count() {
    let _guard = override_lock();
    let device = Device::rtx4090();
    let selector = Selector::default();
    for a in [gen::uniform(1024, 2048, 1024 * 9, 7), gen::long_row(640, 4096, 200.0, 2.0, 8)] {
        let metcf = MeTcfMatrix::from_csr(&a);
        let serial = with_threads(1, || selector.decide(&metcf, &device));
        for threads in THREADS {
            let par = with_threads(threads, || selector.decide(&metcf, &device));
            assert_eq!(serial, par, "SelectorDecision diverged at {threads} threads");
        }
    }
}

/// End-to-end pipeline: full `DtcSpmm` engines built under different thread
/// counts produce bit-identical outputs (conversion, selection and
/// execution are all deterministic).
#[test]
fn pipeline_outputs_bit_identical_across_thread_counts() {
    let _guard = override_lock();
    let a = gen::community(320, 320, 16, 10.0, 0.9, 9);
    let b = DenseMatrix::from_fn(320, 32, |r, c| ((r * 5 + c) % 9) as f32 * 0.125);
    let serial = with_threads(1, || DtcSpmm::new(&a).execute(&b)).unwrap();
    for threads in THREADS {
        let par = with_threads(threads, || DtcSpmm::new(&a).execute(&b)).unwrap();
        assert_bits_identical(&serial, &par, &format!("DtcSpmm pipeline threads={threads}"));
    }
}

/// Acceptance: building repeatedly over one matrix re-runs the ME-TCF
/// conversion exactly once — later builds are cache hits, and `execute`
/// never converts at all.
#[test]
fn repeated_builds_reuse_conversion() {
    // A shape no other test uses, so the first build is a genuine miss.
    let a = gen::uniform(577, 331, 4_811, 424_242);
    let b = DenseMatrix::ones(331, 8);

    clear_conversion_cache();
    let (hits0, misses0) = conversion_cache_stats();
    let engine = DtcSpmm::new(&a);
    let (_, misses1) = conversion_cache_stats();
    assert_eq!(misses1, misses0 + 1, "first build must convert once");

    // Repeated execution on the built engine performs zero conversions.
    let c1 = engine.execute(&b).unwrap();
    let c2 = engine.execute(&b).unwrap();
    assert_bits_identical(&c1, &c2, "repeated execute");
    let (hits1, misses2) = conversion_cache_stats();
    assert_eq!(misses2, misses1, "execute must never re-convert");

    // A second engine over the same matrix reuses the cached conversion.
    let engine2 = DtcSpmm::new(&a);
    let (hits2, misses3) = conversion_cache_stats();
    assert_eq!(misses3, misses2, "rebuild over the same matrix must not convert");
    assert!(hits2 > hits1.max(hits0), "rebuild must be a cache hit");
    assert_bits_identical(&c1, &engine2.execute(&b).unwrap(), "rebuilt engine");
}

/// The per-engine trace cache: repeated `simulate` calls on one engine
/// return identical reports (the trace is memoized, keyed by N and device).
#[test]
fn repeated_simulate_is_consistent() {
    let a = gen::uniform(512, 512, 4_096, 11);
    let engine = DtcSpmm::new(&a);
    let device = Device::rtx4090();
    let r1 = engine.simulate(64, &device);
    let r2 = engine.simulate(64, &device);
    assert_eq!(r1.time_ms.to_bits(), r2.time_ms.to_bits());

    // A modified device clone must not alias the preset's cached trace.
    let mut slow = device.clone();
    slow.mem_latency_cycles *= 4.0;
    let r3 = engine.simulate(64, &slow);
    assert!(
        r3.time_ms > r1.time_ms,
        "slower memory must cost more: {} vs {}",
        r3.time_ms,
        r1.time_ms
    );
}

/// `CsrMatrix` round-trip sanity for the helper used above.
#[test]
fn distinct_cols_helper_matches_util() {
    let a: CsrMatrix = gen::uniform(64, 96, 512, 12);
    let direct = a.col_idx().iter().collect::<std::collections::HashSet<_>>().len();
    assert_eq!(direct, dtc_spmm::baselines::util::distinct_col_count(&a));
}
