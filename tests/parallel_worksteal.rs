//! Work-stealing determinism: the `dtc-par` engine writes every result into
//! its item-indexed slot, so outputs are **bit-identical** to a serial walk
//! no matter which worker executes which chunk. These properties drive the
//! schedule itself — thread count, seeded steal-victim order, threaded vs
//! virtual-time execution — and assert `to_bits()` equality throughout.

use dtc_spmm::core::{clear_conversion_cache, DtcSpmm};
use dtc_spmm::formats::{gen, DenseMatrix};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serial, even, odd (uneven bands), and oversubscribed.
const THREADS: [usize; 4] = [1, 2, 7, 16];

/// The thread/seed/mode overrides in `dtc-par` are process-global; tests
/// that mutate them serialize on this lock.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` under a fixed schedule (thread count, steal seed, virtual-time
/// mode), restoring the defaults after.
fn with_schedule<R>(
    threads: usize,
    steal_seed: Option<u64>,
    virtual_time: bool,
    f: impl FnOnce() -> R,
) -> R {
    dtc_par::set_threads(Some(threads));
    dtc_par::set_steal_seed(steal_seed);
    dtc_par::set_virtual_time(virtual_time);
    let r = f();
    dtc_par::set_virtual_time(false);
    dtc_par::set_steal_seed(None);
    dtc_par::set_threads(None);
    r
}

/// Pseudo-random chunk weights from a seed (splitmix-style), heavy-tailed
/// so weighted cuts and stealing both have something to do.
fn random_weights(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let mut x = seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 31;
            if x % 19 == 0 {
                x % 4000 // occasional monster item
            } else {
                x % 23
            }
        })
        .collect()
}

#[track_caller]
fn assert_bits_identical(serial: &DenseMatrix, parallel: &DenseMatrix, ctx: &str) {
    assert_eq!(serial.rows(), parallel.rows(), "{ctx}: row count");
    assert_eq!(serial.cols(), parallel.cols(), "{ctx}: col count");
    for (i, (s, p)) in serial.as_slice().iter().zip(parallel.as_slice()).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{ctx}: element {i} differs — serial {s} vs parallel {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine level: a weighted map over skewed items returns the identical
    /// vector under every thread count, steal seed, and execution mode.
    #[test]
    fn weighted_map_bit_identical_under_steal_schedules(
        n in 1usize..500,
        weight_seed in 0u64..10_000,
        threads_idx in 0usize..4,
        steal_seed in 0u64..1_000_000,
        virtual_time in any::<bool>(),
    ) {
        let _guard = override_lock();
        let weights = random_weights(n, weight_seed);
        let f = |i: usize| (i as u64).wrapping_mul(31) ^ weights[i];
        let want: Vec<u64> =
            with_schedule(1, None, false, || dtc_par::par_map_collect_weighted(&weights, f));
        let got = with_schedule(THREADS[threads_idx], Some(steal_seed), virtual_time, || {
            dtc_par::par_map_collect_weighted(&weights, f)
        });
        prop_assert_eq!(got, want);
    }

    /// Disjoint-output level: weighted `par_chunks_mut` fills every chunk
    /// exactly once regardless of the schedule.
    #[test]
    fn weighted_chunks_bit_identical_under_steal_schedules(
        n_chunks in 1usize..300,
        chunk_size in 1usize..9,
        weight_seed in 0u64..10_000,
        threads_idx in 0usize..4,
        steal_seed in 0u64..1_000_000,
        virtual_time in any::<bool>(),
    ) {
        let _guard = override_lock();
        let weights = random_weights(n_chunks, weight_seed);
        let len = n_chunks * chunk_size;
        let fill = |data: &mut [f32]| {
            dtc_par::par_chunks_mut_weighted(data, chunk_size, &weights, |i, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 7 + k) as f32 * 0.5 + weights[i] as f32;
                }
            });
        };
        let mut want = vec![0.0f32; len];
        with_schedule(1, None, false, || fill(&mut want));
        let mut got = vec![0.0f32; len];
        with_schedule(THREADS[threads_idx], Some(steal_seed), virtual_time, || fill(&mut got));
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pipeline level: conversion + selection + execution over random
    /// matrices is bit-identical to serial for every thread count and steal
    /// schedule (the tentpole's end-to-end determinism claim).
    #[test]
    fn pipeline_bit_identical_under_steal_schedules(
        rows in 16usize..260,
        cols in 8usize..200,
        seed in 0u64..500,
        threads_idx in 0usize..4,
        steal_seed in 0u64..1_000_000,
        virtual_time in any::<bool>(),
    ) {
        let _guard = override_lock();
        let mean_deg = (seed % 5) as f64 + 1.5;
        let a = gen::power_law(rows, cols, mean_deg, 2.0, seed);
        let b = DenseMatrix::from_fn(cols, 16, |r, c| ((r * 5 + c * 3) % 13) as f32 * 0.25 - 1.0);
        clear_conversion_cache();
        let want = with_schedule(1, None, false, || {
            DtcSpmm::new(&a).execute(&b).expect("serial execute")
        });
        clear_conversion_cache();
        let got = with_schedule(THREADS[threads_idx], Some(steal_seed), virtual_time, || {
            DtcSpmm::new(&a).execute(&b).expect("parallel execute")
        });
        assert_bits_identical(&want, &got, "pipeline");
    }
}
