//! Property tests on the Tensor-Core precision emulation: idempotence,
//! monotonicity, representability relationships, and error bounds.

use dtc_spmm::formats::precision::{round_to_bf16, round_to_fp16, Precision};
use dtc_spmm::formats::tf32::round_to_tf32;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rounding_is_idempotent(x in -1e30f32..1e30) {
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            let once = p.round(x);
            prop_assert_eq!(p.round(once).to_bits(), once.to_bits(), "{:?} at {}", p, x);
        }
    }

    #[test]
    fn rounding_preserves_sign_and_bounds_error(x in -1e20f32..1e20) {
        prop_assume!(x != 0.0);
        for p in [Precision::Tf32, Precision::Bf16] {
            let r = p.round(x);
            prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
            let rel = ((x - r) / x).abs();
            prop_assert!(rel <= p.unit_roundoff(), "{:?}: x={} r={} rel={}", p, x, r, rel);
        }
    }

    #[test]
    fn bf16_values_are_tf32_representable(x in -1e20f32..1e20) {
        // bf16 keeps 7 mantissa bits, a subset of TF32's 10.
        let b = round_to_bf16(x);
        prop_assert_eq!(round_to_tf32(b).to_bits(), b.to_bits());
    }

    #[test]
    fn fp16_normal_values_are_tf32_representable(x in -60000.0f32..60000.0) {
        let h = round_to_fp16(x);
        prop_assume!(h.is_finite());
        prop_assert_eq!(round_to_tf32(h).to_bits(), h.to_bits());
    }

    #[test]
    fn tf32_at_least_as_accurate_as_bf16(x in -1e15f32..1e15) {
        prop_assume!(x != 0.0);
        let e_tf = (round_to_tf32(x) - x).abs();
        let e_bf = (round_to_bf16(x) - x).abs();
        prop_assert!(e_tf <= e_bf + f32::EPSILON * x.abs());
    }

    #[test]
    fn rounding_is_monotone(a in -1e15f32..1e15, b in -1e15f32..1e15) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            prop_assert!(p.round(lo) <= p.round(hi), "{:?}: {} {}", p, lo, hi);
        }
    }
}
