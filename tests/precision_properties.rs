//! Property tests on the Tensor-Core precision emulation: idempotence,
//! monotonicity, representability relationships, and error bounds.

use dtc_spmm::formats::precision::{round_to_bf16, round_to_fp16, Precision};
use dtc_spmm::formats::tf32::round_to_tf32;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rounding_is_idempotent(x in -1e30f32..1e30) {
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            let once = p.round(x);
            prop_assert_eq!(p.round(once).to_bits(), once.to_bits(), "{:?} at {}", p, x);
        }
    }

    #[test]
    fn rounding_preserves_sign_and_bounds_error(x in -1e20f32..1e20) {
        // Subnormal inputs flush to zero under TF32, so the relative bound
        // only applies to normal values (the lattice test below covers FTZ).
        prop_assume!(x.is_normal());
        for p in [Precision::Tf32, Precision::Bf16] {
            let r = p.round(x);
            prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
            let rel = ((x - r) / x).abs();
            prop_assert!(rel <= p.unit_roundoff(), "{:?}: x={} r={} rel={}", p, x, r, rel);
        }
    }

    #[test]
    fn bf16_values_are_tf32_representable(x in -1e20f32..1e20) {
        // bf16 keeps 7 mantissa bits, a subset of TF32's 10 — for normal
        // values; subnormal bf16 outputs are flushed by the TF32 path.
        let b = round_to_bf16(x);
        prop_assume!(b == 0.0 || b.is_normal());
        prop_assert_eq!(round_to_tf32(b).to_bits(), b.to_bits());
    }

    #[test]
    fn fp16_normal_values_are_tf32_representable(x in -60000.0f32..60000.0) {
        let h = round_to_fp16(x);
        prop_assume!(h.is_finite());
        prop_assert_eq!(round_to_tf32(h).to_bits(), h.to_bits());
    }

    #[test]
    fn tf32_at_least_as_accurate_as_bf16(x in -1e15f32..1e15) {
        prop_assume!(x != 0.0);
        let e_tf = (round_to_tf32(x) - x).abs();
        let e_bf = (round_to_bf16(x) - x).abs();
        prop_assert!(e_tf <= e_bf + f32::EPSILON * x.abs());
    }

    #[test]
    fn rounding_is_monotone(a in -1e15f32..1e15, b in -1e15f32..1e15) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            prop_assert!(p.round(lo) <= p.round(hi), "{:?}: {} {}", p, lo, hi);
        }
    }
}

/// The IEEE-754 special-value lattice through the TF32 input path: NaN and
/// ±Inf pass through, signed zeros keep their sign bit, subnormals flush to
/// same-signed zero, and the smallest normal survives exactly. All of it is
/// idempotent.
#[test]
fn tf32_special_value_lattice() {
    assert!(round_to_tf32(f32::NAN).is_nan());
    assert_eq!(round_to_tf32(f32::INFINITY), f32::INFINITY);
    assert_eq!(round_to_tf32(f32::NEG_INFINITY), f32::NEG_INFINITY);
    assert_eq!(round_to_tf32(0.0).to_bits(), 0.0f32.to_bits());
    assert_eq!(round_to_tf32(-0.0).to_bits(), (-0.0f32).to_bits());
    let subnormals = [f32::from_bits(1), 1.0e-39, 1.1754942e-38, f32::from_bits(0x007F_FFFF)];
    for s in subnormals {
        assert_eq!(round_to_tf32(s).to_bits(), 0, "{s:e} must flush to +0");
        assert_eq!(round_to_tf32(-s).to_bits(), 0x8000_0000, "-{s:e} must flush to -0");
    }
    assert_eq!(round_to_tf32(f32::MIN_POSITIVE), f32::MIN_POSITIVE);
    assert_eq!(round_to_tf32(-f32::MIN_POSITIVE), -f32::MIN_POSITIVE);
    let lattice = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        1.0e-39,
        -1.0e-39,
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
    ];
    for x in lattice {
        let once = round_to_tf32(x);
        assert_eq!(round_to_tf32(once).to_bits(), once.to_bits(), "idempotence at {x:e}");
    }
}
