//! Property tests on the reordering algorithms: every reorderer returns a
//! valid permutation, TCA never regresses TC-block density (its guard),
//! and reordering never changes SpMM results.

use dtc_spmm::core::DtcSpmm;
use dtc_spmm::formats::{Condensed, CsrMatrix, DenseMatrix};
use dtc_spmm::reorder::{
    is_permutation, LouvainReorderer, Lsh64Reorderer, MetisLikeReorderer, Reorderer, TcaReorderer,
    TcuOnlyReorderer,
};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..64).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n, 0..n, 1i32..4).prop_map(|(r, c, v)| (r, c, v as f32)),
            0..200,
        )
        .prop_map(move |t| CsrMatrix::from_triplets(n, n, &t).expect("in range"))
    })
}

fn all_reorderers() -> Vec<Box<dyn Reorderer>> {
    vec![
        Box::new(TcaReorderer::default()),
        Box::new(TcuOnlyReorderer::default()),
        Box::new(Lsh64Reorderer::default()),
        Box::new(MetisLikeReorderer::default()),
        Box::new(LouvainReorderer::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reorderers_always_produce_permutations(a in arb_matrix()) {
        for r in all_reorderers() {
            let perm = r.reorder(&a);
            prop_assert!(is_permutation(&perm, a.rows()), "{} broke", r.name());
        }
    }

    #[test]
    fn tca_never_regresses_block_count(a in arb_matrix()) {
        // The no-regression guard: TCA's permutation never yields more TC
        // blocks than the original order.
        let before = Condensed::from_csr(&a).num_tc_blocks();
        let perm = TcaReorderer::default().reorder(&a);
        let after = Condensed::from_csr(&a.permute_rows(&perm)).num_tc_blocks();
        prop_assert!(after <= before, "after={after} before={before}");
    }

    #[test]
    fn reordered_pipeline_preserves_results(a in arb_matrix()) {
        let b = DenseMatrix::from_fn(a.cols(), 4, |r, c| ((r + c) % 5) as f32 * 0.25);
        let plain = DtcSpmm::builder().reorder(false).build(&a).execute(&b).expect("ok");
        let reordered = DtcSpmm::builder().reorder(true).build(&a).execute(&b).expect("ok");
        // Same TF32 sums in a possibly different association order.
        let max_row = (0..a.rows()).map(|r| a.row_len(r)).max().unwrap_or(0) as f32;
        let bound = (max_row * 16.0).max(1.0) * dtc_spmm::formats::tf32::TF32_UNIT_ROUNDOFF + 1e-6;
        prop_assert!(plain.max_abs_diff(&reordered) <= bound);
    }

    #[test]
    fn permuted_matrix_keeps_row_multiset(a in arb_matrix()) {
        let perm = TcaReorderer::default().reorder(&a);
        let m = a.permute_rows(&perm);
        prop_assert_eq!(m.nnz(), a.nnz());
        // Row r of m equals row perm[r] of a.
        for (new_row, &orig) in perm.iter().enumerate() {
            prop_assert_eq!(m.row_entries(new_row), a.row_entries(orig));
        }
    }
}
