//! Validation of the simulation-based Selector against ground truth: its
//! makespan model must predict, without running either kernel, which of
//! base / balanced is actually faster under the full simulator — the
//! property §4.5.2's design depends on.

use dtc_spmm::baselines::SpmmKernel;
use dtc_spmm::core::{BalancedDtcKernel, DtcKernel, KernelChoice, Selector};
use dtc_spmm::datasets::{scaled_device, suite_corpus};
use dtc_spmm::formats::MeTcfMatrix;
use dtc_spmm::sim::Device;

#[test]
fn selector_predictions_mostly_match_ground_truth() {
    let device = scaled_device(Device::rtx4090());
    let selector = Selector::default();
    let n = 128;
    // A spread of corpus matrices (every 7th) keeps the test under a few
    // seconds while covering all generator families.
    let corpus = suite_corpus();
    let sample: Vec<_> = corpus.iter().step_by(7).collect();
    let mut correct = 0usize;
    let mut regret = 0.0f64;
    let mut oracle = 0.0f64;
    for d in &sample {
        let a = d.matrix();
        let decision = selector.decide(&MeTcfMatrix::from_csr(&a), &device);
        let base = DtcKernel::new(&a).simulate(n, &device).time_ms;
        let balanced = BalancedDtcKernel::new(&a).simulate(n, &device).time_ms;
        let best = base.min(balanced);
        let picked = match decision.choice {
            KernelChoice::Base => base,
            KernelChoice::Balanced => balanced,
        };
        if (picked - best).abs() < best * 0.02 {
            correct += 1;
        }
        regret += picked;
        oracle += best;
    }
    let accuracy = correct as f64 / sample.len() as f64;
    assert!(accuracy >= 0.8, "selector right on only {:.0}% of {}", accuracy * 100.0, sample.len());
    // Total time within 5% of the oracle.
    assert!(regret <= oracle * 1.05, "regret {:.2}% over oracle", (regret / oracle - 1.0) * 100.0);
}

#[test]
fn selector_beats_always_base_and_always_balanced() {
    let device = scaled_device(Device::rtx4090());
    let selector = Selector::default();
    let n = 128;
    let corpus = suite_corpus();
    let sample: Vec<_> = corpus.iter().step_by(9).collect();
    let mut with_selector = 0.0;
    let mut always_base = 0.0;
    let mut always_balanced = 0.0;
    for d in &sample {
        let a = d.matrix();
        let decision = selector.decide(&MeTcfMatrix::from_csr(&a), &device);
        let base = DtcKernel::new(&a).simulate(n, &device).time_ms;
        let balanced = BalancedDtcKernel::new(&a).simulate(n, &device).time_ms;
        with_selector += match decision.choice {
            KernelChoice::Base => base,
            KernelChoice::Balanced => balanced,
        };
        always_base += base;
        always_balanced += balanced;
    }
    assert!(
        with_selector <= always_base * 1.001,
        "selector {with_selector} vs always-base {always_base}"
    );
    assert!(
        with_selector <= always_balanced * 1.001,
        "selector {with_selector} vs always-balanced {always_balanced}"
    );
}
