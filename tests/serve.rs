//! Integration tests for the `dtc-serve` serving layer: coalesced
//! preparation, warmup-pinned eviction, collision safety and bitwise
//! conformance of the served path against direct engine execution.
//!
//! The conversion cache and the telemetry registry are process-wide, so
//! tests that measure their counters serialize on one mutex.

use dtc_spmm::core::{
    conversion_cache_stats, prepare, DtcError, DtcSpmm, EngineConfig, EngineKind, KeyMaterial,
};
use dtc_spmm::formats::{gen, CsrMatrix, DenseMatrix};
use dtc_spmm::serve::{EnginePool, PoolConfig, PoolKey, Request, ServeConfig, SpmmServer};
use std::sync::{Arc, Barrier, Mutex};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn dense_for(a: &CsrMatrix, n: usize, salt: usize) -> DenseMatrix {
    DenseMatrix::from_fn(a.cols(), n, |r, c| ((r * 13 + c * 5 + salt) % 23) as f32 - 11.0)
}

/// A thundering herd of same-key requests must coalesce into exactly one
/// preparation: one conversion-cache miss total, all threads sharing the
/// same engine — even with the intra-engine thread pool active.
#[test]
fn concurrent_same_key_requests_prepare_once() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    dtc_spmm::par::set_threads(Some(4));
    let a = Arc::new(gen::uniform(160, 160, 1900, 0x5e71));
    let config = EngineConfig::default();
    let pool = Arc::new(EnginePool::new(PoolConfig::default()));
    let (_, misses_before) = conversion_cache_stats();

    let workers = 8;
    let barrier = Arc::new(Barrier::new(workers));
    // Spawn ALL handles before joining any: the barrier makes the herd
    // truly concurrent, so a lazy spawn/join chain would deadlock.
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let (pool, a, config, barrier) =
                (Arc::clone(&pool), Arc::clone(&a), config.clone(), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let key = PoolKey::new(EngineKind::Dtc, &config, KeyMaterial::of(&a));
                barrier.wait();
                pool.get_or_prepare(key, || prepare(EngineKind::Dtc, &config, &a))
                    .expect("pooled prepare failed")
                    .engine
            })
        })
        .collect();
    let engines: Vec<_> = handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();

    let (_, misses_after) = conversion_cache_stats();
    assert_eq!(
        misses_after - misses_before,
        1,
        "same-key herd must pay exactly one conversion, not one per thread"
    );
    assert_eq!(pool.len(), 1);
    for e in &engines[1..] {
        assert!(Arc::ptr_eq(&engines[0], e), "all threads must share one engine");
    }
    dtc_spmm::par::set_threads(None);
}

/// Eviction must skip entries still inside their warmup window even when
/// they are the least recently used, and refuse (not thrash) when every
/// resident engine is pinned.
#[test]
fn eviction_respects_warmup_pins_through_server() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let serve =
        ServeConfig { pool: PoolConfig { capacity: 2, warmup_uses: 2 }, ..ServeConfig::default() };
    let server = SpmmServer::new(serve);
    let mats: Vec<Arc<CsrMatrix>> =
        (0..3).map(|i| Arc::new(gen::uniform(64, 64, 400, 0xE1 + i))).collect();
    let req = |m: &Arc<CsrMatrix>| Request {
        tenant: 0,
        kind: EngineKind::Dtc,
        config: EngineConfig::default(),
        matrix: Arc::clone(m),
        b: dense_for(m, 4, 1),
    };

    // Fill the pool with two cold (pinned) engines.
    server.serve_one(req(&mats[0])).unwrap();
    server.serve_one(req(&mats[1])).unwrap();
    // Both pinned: a third matrix must be refused, not evict a cold engine.
    match server.serve_one(req(&mats[2])) {
        Err(DtcError::PoolExhausted { capacity: 2 }) => {}
        other => panic!("expected PoolExhausted, got {other:?}"),
    }
    // Warm engine 0 past its pin; now the third matrix evicts it.
    server.serve_one(req(&mats[0])).unwrap();
    server.serve_one(req(&mats[2])).expect("evictable LRU entry must make room");
    assert_eq!(server.pool().len(), 2);
}

/// Two matrices crafted to share a `KeyMaterial` fingerprint must still be
/// served from distinct engines: the pool verifies full key equality, so a
/// fingerprint collision degrades to a shared bucket, never to one tenant
/// receiving another tenant's result.
#[test]
fn keymaterial_fingerprint_collision_is_served_correctly() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    // Same shape and nnz, different entries: identical structural prefix
    // maximizes key overlap; fingerprints may or may not collide, but the
    // pool must behave identically either way because hits verify the full
    // KeyMaterial (checksums included).
    let a = Arc::new(gen::uniform(96, 96, 800, 0xAAAA));
    let b = Arc::new(gen::uniform(96, 96, 800, 0xBBBB));
    assert_eq!(a.nnz(), b.nnz(), "collision setup needs equal nnz");
    let config = EngineConfig::default();
    let ka = KeyMaterial::of(&a);
    let kb = KeyMaterial::of(&b);
    assert_ne!(ka, kb, "full keys must differ");

    let server = SpmmServer::new(ServeConfig::default());
    for (m, salt) in [(&a, 3), (&b, 4), (&a, 5), (&b, 6)] {
        let bmat = dense_for(m, 8, salt);
        let served = server
            .serve_one(Request {
                tenant: salt,
                kind: EngineKind::Dtc,
                config: config.clone(),
                matrix: Arc::clone(m),
                b: bmat.clone(),
            })
            .unwrap();
        let direct = DtcSpmm::builder().config(config.clone()).build(m).execute(&bmat).unwrap();
        assert_eq!(served.as_slice(), direct.as_slice(), "collision cross-talk detected");
    }
    assert_eq!(server.pool().len(), 2, "both matrices must be resident separately");
}

/// Every engine family reachable through `prepare` must return exactly the
/// bits its concrete implementation returns: the trait dispatch layer may
/// not perturb results.
#[test]
fn trait_dispatch_is_bitwise_identical() {
    let a = gen::power_law(128, 128, 7.0, 2.3, 0x7777);
    let b = dense_for(&a, 16, 9);
    let config = EngineConfig::default();
    for kind in [EngineKind::Dtc, EngineKind::Iterative, EngineKind::Cusparse, EngineKind::Sputnik]
    {
        let engine = prepare(kind, &config, &a).expect("prepare failed");
        let via_trait = engine.execute(&b).expect("trait execute failed");
        let direct = DtcSpmm::builder().config(config.clone()).build(&a).execute(&b).unwrap();
        if matches!(kind, EngineKind::Dtc) {
            assert_eq!(via_trait.as_slice(), direct.as_slice(), "{kind:?} differs from direct");
        }
        // Engines expose the source matrix as their identity regardless of
        // internal reordering or format.
        assert_eq!(engine.key(), &KeyMaterial::of(&a), "{kind:?} key mismatch");
        assert_eq!((engine.rows(), engine.cols()), (a.rows(), a.cols()));
    }
}

/// Batched (coalesced) serving must be bitwise-equal to serving each
/// request alone, at any thread count: output columns are independent, so
/// concatenating operands is numerically free.
#[test]
fn batched_serving_is_bitwise_equal_at_any_thread_count() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let a = Arc::new(gen::community(192, 192, 8, 9.0, 0.2, 0xC0DE));
    let config = EngineConfig::default();
    let direct = DtcSpmm::builder().config(config.clone()).build(&a);

    for threads in [1usize, 4] {
        dtc_spmm::par::set_threads(Some(threads));
        let server = SpmmServer::new(ServeConfig::default());
        // Queue several same-key requests of different widths, then drain:
        // they must coalesce into one batch.
        let widths = [4usize, 16, 8, 1];
        let seqs: Vec<u64> = widths
            .iter()
            .enumerate()
            .map(|(t, &w)| {
                server
                    .admit(Request {
                        tenant: t,
                        kind: EngineKind::Dtc,
                        config: config.clone(),
                        matrix: Arc::clone(&a),
                        b: dense_for(&a, w, 40 + t),
                    })
                    .expect("admit failed")
            })
            .collect();
        let outcome = server.serve_next_batch().expect("queue non-empty").expect("batch failed");
        assert_eq!(outcome.batch_size, widths.len(), "same-key requests must coalesce");
        assert_eq!(outcome.batch_cols, widths.iter().sum::<usize>());
        assert_eq!(server.queued(), 0);
        for (i, resp) in outcome.responses.iter().enumerate() {
            assert_eq!(resp.seq, seqs[i]);
            let alone = direct.execute(&dense_for(&a, widths[i], 40 + i)).unwrap();
            assert_eq!(
                resp.c.as_slice(),
                alone.as_slice(),
                "batched result differs from solo execution (threads={threads}, req={i})"
            );
        }
    }
    dtc_spmm::par::set_threads(None);
}

/// Admission control: a full queue rejects with `DtcError::Admission` and
/// a malformed operand never reaches the pool.
#[test]
fn admission_rejects_overflow_and_malformed_requests() {
    let a = Arc::new(gen::uniform(64, 64, 300, 0xADA));
    let config = EngineConfig::default();
    let server = SpmmServer::new(ServeConfig { max_queue: 2, ..ServeConfig::default() });
    let req = |w: usize| Request {
        tenant: 0,
        kind: EngineKind::Dtc,
        config: config.clone(),
        matrix: Arc::clone(&a),
        b: dense_for(&a, w, 2),
    };
    server.admit(req(4)).unwrap();
    server.admit(req(4)).unwrap();
    match server.admit(req(4)) {
        Err(DtcError::Admission { .. }) => {}
        other => panic!("expected Admission error, got {other:?}"),
    }
    // Wrong operand height is rejected before touching the queue.
    let bad = Request {
        tenant: 0,
        kind: EngineKind::Dtc,
        config: config.clone(),
        matrix: Arc::clone(&a),
        b: DenseMatrix::zeros(63, 4),
    };
    match server.admit(bad) {
        Err(DtcError::Admission { .. }) => {}
        other => panic!("expected Admission error, got {other:?}"),
    }
    assert_eq!(server.queued(), 2);
}

/// Admission-time static verification: an engine prepared against a
/// deliberately broken device model (zeroed Tensor-Core cost table) must
/// be rejected with `DtcError::Verify` at prepare time — before the first
/// execute — and the failed prepare must not occupy a pool slot. Fixing
/// the configuration then succeeds under the (different) pool key.
#[test]
fn admission_verification_rejects_crafted_illegal_engine() {
    let a = Arc::new(gen::uniform(64, 64, 400, 0xBAD));
    let mut broken = EngineConfig::default();
    broken.device.tc_hmma_per_cycle = 0.0; // cost-table coverage violation
    let server = SpmmServer::new(ServeConfig::default()); // admission_verify on by default
    let req = |config: &EngineConfig| Request {
        tenant: 0,
        kind: EngineKind::Dtc,
        config: config.clone(),
        matrix: Arc::clone(&a),
        b: dense_for(&a, 4, 3),
    };
    match server.serve_one(req(&broken)) {
        Err(DtcError::Verify { kernel, diagnostic, errors }) => {
            assert!(errors >= 1);
            assert!(
                diagnostic.contains("cost-table-coverage"),
                "expected the cost-table lint, got: {diagnostic} (kernel {kernel})"
            );
        }
        other => panic!("expected DtcError::Verify at admission, got {other:?}"),
    }
    assert_eq!(server.pool().len(), 0, "rejected engine must not be cached");

    // The same request under a sound device is served normally.
    let c = server.serve_one(req(&EngineConfig::default())).unwrap();
    assert_eq!(c.rows(), 64);
    assert_eq!(server.pool().len(), 1);

    // Opting out of admission verification restores the old (risky)
    // behavior: the broken engine prepares fine and only per-batch verify
    // or execution would catch it later.
    let lax = SpmmServer::new(ServeConfig { admission_verify: false, ..ServeConfig::default() });
    lax.serve_one(req(&broken)).expect("without the gate the prepare goes through");
}
