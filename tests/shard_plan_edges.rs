//! Pins `ShardPlan::weighted`'s edge-case behavior.
//!
//! The concurrency audit concluded the planner is correct on its
//! degenerate inputs — all-zero weights (the implicit `+1` per item keeps
//! zero-weight runs splittable), fewer items than workers (`weighted_cuts`
//! clamps the part count to the item count, never emitting an empty
//! band), and a single mega-weight dwarfing everything else (the quantile
//! rule isolates it without starving the remaining items). These
//! properties are pinned here, both as named cases and as a property
//! sweep, cross-checked against the structural plan lints in
//! `dtc_verify::sched`.

use dtc_spmm::par::ShardPlan;
use dtc_spmm::verify::{verify_plan, SchedCase, Severity};
use proptest::prelude::*;

/// Structural soundness, asserted directly and via the plan lints:
/// chunks tile `0..n` in order, bands tile the chunk list in order, no
/// band or chunk is empty, and the lint registry agrees.
#[track_caller]
fn assert_sound(plan: &ShardPlan, weights: &[u64], ctx: &str) {
    assert_eq!(plan.len(), weights.len(), "{ctx}: item count");
    let mut at = 0;
    for &(s, e) in plan.chunk_ranges() {
        assert_eq!(s, at, "{ctx}: chunk gap/overlap at item {at}");
        assert!(e > s, "{ctx}: empty chunk at item {s}");
        at = e;
    }
    assert_eq!(at, plan.len(), "{ctx}: chunks must cover every item");
    let mut cat = 0;
    for &(cs, ce) in plan.band_ranges() {
        assert_eq!(cs, cat, "{ctx}: band gap/overlap at chunk {cat}");
        assert!(ce > cs, "{ctx}: empty band at chunk {cs}");
        cat = ce;
    }
    assert_eq!(cat, plan.chunk_ranges().len(), "{ctx}: bands must cover every chunk");

    let diags = verify_plan(&SchedCase::new(ctx, plan).with_weights(weights));
    let errors: Vec<_> = diags.iter().filter(|d| d.severity == Severity::Error).collect();
    assert!(errors.is_empty(), "{ctx}: plan lints found errors: {errors:?}");
}

#[test]
fn all_zero_weights_split_like_even() {
    for (n, threads) in [(16usize, 2usize), (64, 4), (7, 3)] {
        let weights = vec![0u64; n];
        let plan = ShardPlan::weighted(threads, &weights);
        assert_sound(&plan, &weights, "all-zero");
        // Zero weights carry no skew: every item costs the implicit +1, so
        // the heaviest band holds at most one chunk more than an even cut.
        assert_eq!(plan.num_bands(), threads, "all-zero weights must fill every worker");
        let chunk_counts: Vec<usize> = plan.band_ranges().iter().map(|&(s, e)| e - s).collect();
        let (min, max) = (chunk_counts.iter().min().unwrap(), chunk_counts.iter().max().unwrap());
        assert!(max - min <= 1, "all-zero bands must stay balanced: {chunk_counts:?}");
    }
}

#[test]
fn fewer_items_than_workers_never_emits_an_empty_band() {
    for threads in [4usize, 8, 16] {
        for n in 2..4usize {
            let weights: Vec<u64> = (0..n as u64).map(|i| i * 5).collect();
            let plan = ShardPlan::weighted(threads, &weights);
            assert_sound(&plan, &weights, "short");
            // The planner may use fewer bands than workers, never more
            // than there are items, and never an empty one (assert_sound).
            assert!(plan.num_bands() <= n, "{} bands for {n} items", plan.num_bands());
            assert!(plan.num_bands() >= 1);
        }
    }
}

#[test]
fn single_mega_weight_is_isolated_without_starving_the_rest() {
    let mut weights = vec![1u64; 24];
    weights[7] = 1 << 40;
    let plan = ShardPlan::weighted(3, &weights);
    assert_sound(&plan, &weights, "mega");
    // The mega item dominates every quantile: the cut lands immediately
    // after it (the chunk absorbs the light items *before* it, since the
    // running sum first crosses a quantile at the mega item, but never
    // drags items after it into the same steal granule).
    let mega_chunk =
        plan.chunk_ranges().iter().find(|&&(s, e)| (s..e).contains(&7)).expect("item 7 is covered");
    assert_eq!(mega_chunk.1, 8, "the chunk must end right after the mega item: {mega_chunk:?}");
    // And the remaining items still get chunks of their own (the plan is
    // not one giant chunk plus crumbs).
    assert!(plan.chunk_ranges().len() >= 3, "{:?}", plan.chunk_ranges());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any weight vector, any worker count: the weighted plan is
    /// structurally sound, passes the plan lints with weights attached,
    /// and is a pure function of its inputs.
    #[test]
    fn weighted_plans_are_sound_and_deterministic(
        weights in proptest::collection::vec(0u64..5_000, 0..200),
        threads in 1usize..17,
        mega_at in 0usize..400, // < 200: heavy-tail injection site, else none
    ) {
        let mut weights = weights;
        if mega_at < 200 && !weights.is_empty() {
            let at = mega_at % weights.len();
            weights[at] = u32::MAX as u64;
        }
        let plan = ShardPlan::weighted(threads, &weights);
        if !weights.is_empty() {
            assert_sound(&plan, &weights, "prop");
        } else {
            prop_assert_eq!(plan.len(), 0);
            prop_assert!(plan.chunk_ranges().is_empty());
        }
        let again = ShardPlan::weighted(threads, &weights);
        prop_assert_eq!(plan.chunk_ranges(), again.chunk_ranges());
        prop_assert_eq!(plan.band_ranges(), again.band_ranges());
    }
}
