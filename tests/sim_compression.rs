//! Equivalence properties for the compressed simulator path: class-interned
//! traces must report bit-identically to the legacy one-class-per-block
//! representation, and the set-sharded L2 replay must count exactly what
//! the serial model counts, at every thread count.

use dtc_spmm::sim::{
    l2_counts_over_trace, simulate, Device, KernelTrace, SectorStream, SimOptions, TbWork,
    TimingMode,
};
use proptest::prelude::*;

/// Traces drawn from a small pool of work shapes (duplicate-heavy, like
/// real kernels) with per-block sector streams mixing runs and scattered
/// addresses.
fn arb_dup_trace() -> impl Strategy<Value = KernelTrace> {
    (
        1usize..8,
        1usize..16,
        proptest::collection::vec((0usize..6, 0u64..2000, 1u64..40, 0u64..4000), 0..150),
    )
        .prop_map(|(occ, warps, blocks)| {
            let mut trace = KernelTrace::new(occ, warps);
            for (shape, run_start, run_len, stray) in blocks {
                let mut stream = SectorStream::new();
                stream.push_run(run_start, run_len);
                stream.push(stray); // usually breaks the run: a second one
                trace.push(TbWork {
                    alu_ops: shape as f64 * 37.0,
                    lsu_a_sectors: (shape % 3) as f64 * 11.0,
                    lsu_b_sectors: (run_len + 1) as f64,
                    hmma_ops: (shape % 2) as f64 * 64.0,
                    hmma_count: (shape % 2) as f64 * 128.0,
                    iters: 3.0 + shape as f64,
                    overlap_a_fetch: shape % 2 == 0,
                    b_stream: stream,
                    ..TbWork::default()
                });
            }
            trace
        })
}

/// Rebuilds `trace` with interning disabled: one class per block, streams
/// identical — the naively expanded equivalent of the compressed trace.
fn expand(trace: &KernelTrace) -> KernelTrace {
    let mut legacy = KernelTrace::new(trace.occupancy, trace.warps_per_tb);
    legacy.assumed_l2_hit_rate = trace.assumed_l2_hit_rate;
    legacy.set_interning(false);
    for i in 0..trace.num_tbs() {
        let mut tb = trace.tb(i).clone();
        tb.b_stream = trace.stream(i).clone();
        legacy.push(tb);
    }
    legacy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interned_and_expanded_reports_are_bit_identical(trace in arb_dup_trace()) {
        let device = Device::rtx4090();
        let legacy = expand(&trace);
        prop_assert_eq!(trace.num_tbs(), legacy.num_tbs());
        for timing in [TimingMode::Analytical, TimingMode::EventDriven] {
            for simulate_l2 in [false, true] {
                let opts = SimOptions { simulate_l2, timing };
                let a = simulate(&device, &trace, &opts);
                let b = simulate(&device, &legacy, &opts);
                // Derived PartialEq compares every f64 field, so this is an
                // exact (bitwise, modulo -0.0/NaN absence) comparison of the
                // full report including CounterSet and l2_hit_rate.
                prop_assert_eq!(a, b, "timing={:?} l2={}", timing, simulate_l2);
            }
        }
    }

    #[test]
    fn sharded_l2_counts_equal_serial_at_any_thread_count(trace in arb_dup_trace()) {
        let device = Device::rtx4090();
        let serial = l2_counts_over_trace(&device, &trace, 1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(
                l2_counts_over_trace(&device, &trace, threads),
                serial,
                "threads={}", threads
            );
        }
    }
}

#[test]
fn compression_shrinks_duplicate_heavy_traces() {
    // Deterministic sanity check of the two compression levers: class count
    // and stream encoding, on a trace shaped like a large uniform launch.
    let mut trace = KernelTrace::new(6, 8);
    for i in 0..10_000u64 {
        let mut stream = SectorStream::new();
        stream.push_run((i % 64) * 32, 32); // one contiguous B-row fetch
        trace.push(TbWork {
            hmma_ops: ((i % 8) + 1) as f64 * 32.0,
            lsu_b_sectors: 32.0,
            iters: 8.0,
            b_stream: stream,
            ..TbWork::default()
        });
    }
    assert_eq!(trace.num_tbs(), 10_000);
    assert!(trace.num_classes() <= 8, "{} classes", trace.num_classes());
    // Stream lever: each block's 32 raw u64 addresses encode as one run —
    // an order of magnitude less heap than the Vec<u64> they replace.
    let raw_stream_bytes = 10_000 * 32 * std::mem::size_of::<u64>();
    let encoded_stream_bytes: usize =
        (0..trace.num_tbs()).map(|i| trace.stream(i).memory_bytes()).sum();
    assert!(
        encoded_stream_bytes * 10 <= raw_stream_bytes,
        "encoded {encoded_stream_bytes} vs raw {raw_stream_bytes}"
    );
    // Class lever: interning shrinks the descriptor table itself.
    let mut legacy = KernelTrace::new(6, 8);
    legacy.set_interning(false);
    for i in 0..trace.num_tbs() {
        let mut tb = trace.tb(i).clone();
        tb.b_stream = trace.stream(i).clone();
        legacy.push(tb);
    }
    assert!(
        trace.memory_bytes() * 3 <= legacy.memory_bytes(),
        "interned {} vs legacy {}",
        trace.memory_bytes(),
        legacy.memory_bytes()
    );
}
