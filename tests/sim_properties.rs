//! Property tests on the GPU simulator: scheduling invariants, timing
//! monotonicity, and conservation laws that must hold for any trace.

use dtc_spmm::sim::{schedule, simulate, Device, KernelTrace, SimOptions, TbWork};
use proptest::prelude::*;

fn arb_durations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1.0f64..50_000.0, 0..400)
}

fn arb_trace() -> impl Strategy<Value = KernelTrace> {
    (
        1usize..8,
        1usize..16,
        proptest::collection::vec(
            (0.0f64..5000.0, 0.0f64..5000.0, 0.0f64..5000.0, 0.0f64..5000.0, any::<bool>()),
            0..200,
        ),
    )
        .prop_map(|(occ, warps, tbs)| {
            let mut trace = KernelTrace::new(occ, warps);
            for (alu, lsu_a, lsu_b, hmma, overlap) in tbs {
                trace.push(TbWork {
                    alu_ops: alu,
                    lsu_a_sectors: lsu_a,
                    lsu_b_sectors: lsu_b,
                    hmma_ops: hmma,
                    hmma_count: hmma,
                    iters: 4.0,
                    overlap_a_fetch: overlap,
                    ..TbWork::default()
                });
            }
            trace
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_conserves_work(durations in arb_durations()) {
        let device = Device::rtx4090();
        let out = schedule(&device, 6, &durations);
        // Busy time is conserved across SMs.
        let busy: f64 = out.sm_busy_cycles.iter().sum();
        let total: f64 = durations.iter().sum();
        prop_assert!((busy - total).abs() < 1e-6 * total.max(1.0));
        // Makespan bounds: at least the longest block and at least the
        // perfectly balanced lower bound over slots.
        let max = durations.iter().cloned().fold(0.0, f64::max);
        prop_assert!(out.makespan_cycles + 1e-9 >= max);
        let slots = (device.num_sms * 6) as f64;
        prop_assert!(out.makespan_cycles + 1.0 >= total / slots);
        // Every block landed on a real SM.
        for &sm in &out.block_sm {
            prop_assert!(sm < device.num_sms);
        }
    }

    #[test]
    fn makespan_monotone_in_block_duration(mut durations in arb_durations()) {
        prop_assume!(!durations.is_empty());
        let device = Device::rtx4090();
        let before = schedule(&device, 6, &durations).makespan_cycles;
        durations[0] *= 3.0;
        let after = schedule(&device, 6, &durations).makespan_cycles;
        prop_assert!(after + 1e-9 >= before);
    }

    #[test]
    fn simulation_time_finite_and_scaling(trace in arb_trace()) {
        let device = Device::rtx4090();
        let r = simulate(&device, &trace, &SimOptions::default());
        prop_assert!(r.time_ms.is_finite());
        prop_assert!(r.time_ms >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.tc_utilization));
        prop_assert_eq!(r.num_tbs, trace.num_tbs());
        prop_assert_eq!(r.sm_busy_cycles().len(), device.num_sms);

        // Doubling every block's work cannot make the kernel faster.
        let mut doubled = KernelTrace::new(trace.occupancy, trace.warps_per_tb);
        doubled.assumed_l2_hit_rate = trace.assumed_l2_hit_rate;
        for tb in trace.iter_tbs() {
            doubled.push(TbWork {
                alu_ops: tb.alu_ops * 2.0,
                lsu_a_sectors: tb.lsu_a_sectors * 2.0,
                lsu_b_sectors: tb.lsu_b_sectors * 2.0,
                hmma_ops: tb.hmma_ops * 2.0,
                hmma_count: tb.hmma_count * 2.0,
                iters: tb.iters,
                overlap_a_fetch: tb.overlap_a_fetch,
                ..TbWork::default()
            });
        }
        let r2 = simulate(&device, &doubled, &SimOptions::default());
        prop_assert!(r2.time_ms + 1e-12 >= r.time_ms);
    }

    #[test]
    fn better_l2_hit_never_hurts(trace in arb_trace()) {
        let device = Device::rtx4090();
        let mut cold = trace.clone();
        cold.assumed_l2_hit_rate = 0.0;
        let mut warm = trace;
        warm.assumed_l2_hit_rate = 0.95;
        let rc = simulate(&device, &cold, &SimOptions::default());
        let rw = simulate(&device, &warm, &SimOptions::default());
        prop_assert!(rw.time_ms <= rc.time_ms + 1e-12);
        prop_assert!(rw.dram_bytes <= rc.dram_bytes + 1e-9);
    }

    #[test]
    fn slower_device_is_slower(trace in arb_trace()) {
        prop_assume!(trace.num_tbs() > 0);
        let ada = Device::rtx4090();
        let mut slow = ada.clone();
        slow.sm_clock_ghz /= 2.0;
        let fast_t = simulate(&ada, &trace, &SimOptions::default()).time_ms;
        let slow_t = simulate(&slow, &trace, &SimOptions::default()).time_ms;
        prop_assert!(slow_t + 1e-12 >= fast_t);
    }
}
