//! Counting-allocator proof of the allocation-free hot loops.
//!
//! `dtc-par` raises a thread-local flag ([`dtc_par::hot_loop_active`]) only
//! while a worker executes shard chunks; this test installs a global
//! allocator that counts every allocation made under that flag. After one
//! warm-up round (which grows the worker arenas and interns the telemetry
//! handles), a steady-state kernel-lowering + execution round must perform
//! **zero** heap allocations inside the hot loops — the tentpole's
//! allocation discipline, enforced rather than promised.
//!
//! The flag lives in a `const`-initialized `thread_local!` `Cell`, so
//! reading it from inside the allocator cannot itself allocate or recurse.

use dtc_spmm::core::{BalancedDtcKernel, DtcKernel, SpmmKernel};
use dtc_spmm::formats::{gen, DenseMatrix};
use dtc_spmm::sim::Device;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static HOT_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct HotCountingAlloc;

// SAFETY: delegates every operation to `System`; the only addition is a
// relaxed counter bump keyed on a const-initialized thread-local flag.
unsafe impl GlobalAlloc for HotCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: HotCountingAlloc = HotCountingAlloc;

#[test]
fn kernel_hot_loops_do_not_allocate_in_steady_state() {
    // Community structure gives uneven windows, so the balanced kernel's
    // touched-window scratch and the weighted shard cuts are both exercised.
    let a = gen::community(2048, 2048, 16, 24.0, 0.9, 99);
    let b = DenseMatrix::from_fn(2048, 32, |r, c| ((r + 2 * c) % 9) as f32 * 0.5 - 1.0);
    let device = Device::rtx4090();
    let base = DtcKernel::new(&a);
    let bal = BalancedDtcKernel::new(&a);

    dtc_par::set_threads(Some(4));
    // Warm-up: the first rounds grow the pooled worker arenas to their
    // steady-state capacity and populate the cached telemetry handles.
    for _ in 0..2 {
        let _ = base.trace(64, &device, false);
        let _ = bal.trace(64, &device, false);
        let _ = base.execute(&b).expect("warm-up execute");
    }

    HOT_ALLOCS.store(0, Ordering::SeqCst);
    let t_base = base.trace(64, &device, false);
    let t_bal = bal.trace(64, &device, false);
    let c = base.execute(&b).expect("steady-state execute");
    let hot_allocs = HOT_ALLOCS.load(Ordering::SeqCst);
    dtc_par::set_threads(None);

    // The work actually ran in parallel (not a degenerate serial pass).
    assert!(t_base.num_tbs() > 0 && t_bal.num_tbs() > 0);
    assert_eq!(c.rows(), 2048);
    assert_eq!(
        hot_allocs, 0,
        "steady-state shard execution must not allocate: {hot_allocs} hot allocations"
    );
}
