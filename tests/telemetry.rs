//! The telemetry registry observed end to end: counters stay exact under
//! `dtc-par` worker threads, pipeline phases land as nested spans, and the
//! cache statistics are plain registry counters.

use dtc_spmm::core::{conversion_cache_stats, DtcSpmm};
use dtc_spmm::formats::gen::{community, uniform};
use dtc_spmm::telemetry;
use std::sync::Mutex;

/// Every test here mutates the process-wide registry; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn counters_are_exact_under_par_threads() {
    let _l = LOCK.lock().unwrap();
    let c = telemetry::counter("test.par.events");
    let before = c.get();
    // 4 bands × 1000 items, every worker bumping the same counter.
    let out = dtc_spmm::par::par_map_collect_with(4, 4000, |i| {
        c.incr();
        i
    });
    assert_eq!(out.len(), 4000);
    assert_eq!(c.get(), before + 4000, "relaxed counting must lose nothing");
}

#[test]
fn pipeline_build_produces_nested_phase_spans() {
    let _l = LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    telemetry::reset();
    let a = community(256, 256, 16, 8.0, 0.9, 7);
    let _engine = DtcSpmm::builder().reorder(true).build(&a);
    let snap = telemetry::snapshot();
    for phase in ["reorder", "convert", "select", "lower"] {
        let path = format!("pipeline.build/{phase}");
        let stats = snap.span(&path).unwrap_or_else(|| panic!("missing span {path}"));
        assert_eq!(stats.count, 1, "{path}");
    }
    let build = snap.span("pipeline.build").expect("missing pipeline.build");
    assert_eq!(build.count, 1);
    // The parent encloses its phases, so it cannot be shorter than any one.
    let longest_phase = ["reorder", "convert", "select", "lower"]
        .iter()
        .map(|p| snap.span(&format!("pipeline.build/{p}")).unwrap().total_ns)
        .max()
        .unwrap();
    assert!(build.total_ns >= longest_phase);
    telemetry::set_enabled(false);
}

#[test]
fn disabled_telemetry_records_no_spans() {
    let _l = LOCK.lock().unwrap();
    telemetry::set_enabled(false);
    telemetry::reset();
    let a = uniform(128, 128, 600, 8);
    let _engine = DtcSpmm::new(&a);
    assert!(telemetry::snapshot().span("pipeline.build").is_none());
    // Counters still count even with spans off.
    assert!(telemetry::snapshot().counter("core.pipeline.builds").unwrap_or(0) >= 1);
}

#[test]
fn cache_statistics_are_registry_counters() {
    let _l = LOCK.lock().unwrap();
    let a = uniform(160, 160, 900, 9);
    let (h0, m0) = conversion_cache_stats();
    let _one = DtcSpmm::new(&a);
    let _two = DtcSpmm::new(&a); // structurally identical: must hit
    let (h1, m1) = conversion_cache_stats();
    assert!(h1 > h0, "second build must reuse the conversion");
    assert!(m1 > m0, "first build must convert");
    // The accessor is a thin wrapper over the registry: both views agree.
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("core.cache.conversion.hits"), Some(h1));
    assert_eq!(snap.counter("core.cache.conversion.misses"), Some(m1));
}

#[test]
fn snapshot_json_contains_phase_spans_and_cache_counters() {
    let _l = LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    telemetry::reset();
    let a = uniform(128, 128, 700, 10);
    let _engine = DtcSpmm::new(&a);
    let json = telemetry::snapshot().to_json();
    assert!(json.contains("\"core.cache.conversion.misses\""));
    assert!(json.contains("\"pipeline.build/convert\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    telemetry::set_enabled(false);
}
