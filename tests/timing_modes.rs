//! Cross-validation of the two timing models: every ordering the
//! evaluation relies on must hold under both the closed-form and the
//! event-driven per-block models.

use dtc_spmm::baselines::{CusparseSpmm, SpmmKernel, TcgnnSpmm};
use dtc_spmm::core::{DtcKernel, KernelOpts};
use dtc_spmm::datasets::{representative, scaled_device};
use dtc_spmm::sim::{Device, SimOptions, TimingMode};

fn time_ms(k: &dyn SpmmKernel, n: usize, device: &Device, mode: TimingMode) -> f64 {
    k.simulate_with(n, device, &SimOptions { simulate_l2: false, timing: mode }).time_ms
}

#[test]
fn headline_orderings_hold_in_both_modes() {
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    for abbr in ["DD", "protein"] {
        let d = representative().into_iter().find(|d| d.abbr == abbr).expect("dataset");
        let a = d.matrix();
        let dtc = DtcKernel::new(&a);
        let tcgnn = TcgnnSpmm::new(&a).expect("square");
        let cus = CusparseSpmm::new(&a);
        for mode in [TimingMode::Analytical, TimingMode::EventDriven] {
            let t_dtc = time_ms(&dtc, n, &device, mode);
            let t_tcgnn = time_ms(&tcgnn, n, &device, mode);
            let t_cus = time_ms(&cus, n, &device, mode);
            assert!(t_dtc < t_tcgnn, "{abbr}/{mode:?}: dtc={t_dtc} tcgnn={t_tcgnn}");
            if abbr == "protein" {
                assert!(t_dtc < t_cus, "{abbr}/{mode:?}: dtc={t_dtc} cus={t_cus}");
                assert!(t_tcgnn > t_cus, "{abbr}/{mode:?}: TCGNN must lose on Type II");
            }
        }
    }
}

#[test]
fn ablation_monotone_in_event_mode_too() {
    let device = scaled_device(Device::rtx4090());
    let d = representative().into_iter().find(|d| d.abbr == "ddi").expect("dataset");
    let a = d.matrix();
    let mut prev = f64::INFINITY;
    for (label, opts) in KernelOpts::ablation_ladder() {
        let k = DtcKernel::with_opts(&a, opts);
        let t = time_ms(&k, 128, &device, TimingMode::EventDriven);
        assert!(t <= prev * 1.02, "{label}: {t} vs {prev}");
        prev = t;
    }
}

#[test]
fn modes_agree_on_magnitude() {
    let device = scaled_device(Device::rtx4090());
    let d = representative().into_iter().find(|d| d.abbr == "DD").expect("dataset");
    let a = d.matrix();
    let k = DtcKernel::new(&a);
    let analytic = time_ms(&k, 128, &device, TimingMode::Analytical);
    let event = time_ms(&k, 128, &device, TimingMode::EventDriven);
    let ratio = event / analytic;
    assert!((0.3..=3.0).contains(&ratio), "ratio={ratio}");
}
