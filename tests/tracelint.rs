//! The lint battery's two-sided contract, tested end to end:
//!
//! 1. **Soundness of the lowering sites** — every trace any kernel lowers,
//!    over arbitrary generated matrices, passes every lint with no
//!    error-severity diagnostic (property test).
//! 2. **Sensitivity of the lints** — a trace mutated to violate one
//!    invariant (overflowed shared memory, non-canonical sector runs,
//!    zeroed HMMA work, zero occupancy, non-finite counts) is caught by
//!    exactly the lint that owns that invariant.

use dtc_spmm::baselines::util::distinct_col_count;
use dtc_spmm::baselines::*;
use dtc_spmm::core::{BalancedDtcKernel, DtcKernel};
use dtc_spmm::formats::gen::{power_law, uniform, web};
use dtc_spmm::formats::CsrMatrix;
use dtc_spmm::sim::occupancy::KernelResources;
use dtc_spmm::sim::{Device, KernelTrace, SectorRun, SectorStream, TbWork};
use dtc_spmm::verify::{verify_trace, LintId, ProblemSpec, Severity, TraceCase};
use proptest::prelude::*;

/// Every kernel constructible on `a`, with its SDB (cp.async) flag.
fn lineup(a: &CsrMatrix) -> Vec<(Box<dyn SpmmKernel>, bool)> {
    let mut out: Vec<(Box<dyn SpmmKernel>, bool)> = vec![
        (Box::new(CusparseSpmm::new(a)), false),
        (Box::new(SparseTirSpmm::new(a)), false),
        (Box::new(HpSpmm::new(a)), false),
        (Box::new(HybridSplitSpmm::new(a)), true),
        (Box::new(DtcKernel::new(a)), true),
        (Box::new(BalancedDtcKernel::new(a)), true),
    ];
    if let Ok(k) = TcgnnSpmm::new(a) {
        out.push((Box::new(k), false));
    }
    if let Ok(k) = SputnikSpmm::new(a) {
        out.push((Box::new(k), false));
    }
    if let Ok(k) = BlockSpmm::new(a, 32, u64::MAX) {
        out.push((Box::new(k), true));
    }
    if let Ok(k) = VectorSparseSpmm::new(a, 8) {
        out.push((Box::new(k), true));
    }
    if let Ok(k) = FlashLlmSpmm::new(a, u64::MAX) {
        out.push((Box::new(k), true));
    }
    if let Ok(k) = SpartaSpmm::new(a, SPARTA_DEFAULT_LIMIT) {
        out.push((Box::new(k), true));
    }
    out
}

/// Lints every kernel's trace on `a`; panics on any error-severity
/// diagnostic.
fn assert_all_kernels_clean(a: &CsrMatrix, n: usize) {
    let device = Device::rtx4090();
    let b_rows_touched = distinct_col_count(a);
    for (kernel, sdb) in lineup(a) {
        let trace = kernel.trace(n, &device, true);
        let problem =
            ProblemSpec { rows: a.rows(), cols: a.cols(), nnz: a.nnz(), n, b_rows_touched };
        let case =
            TraceCase::new(kernel.name(), &device, &trace).with_problem(problem).with_sdb(sdb);
        let errors: Vec<_> =
            verify_trace(&case).into_iter().filter(|d| d.severity == Severity::Error).collect();
        assert!(
            errors.is_empty(),
            "{} on {}x{} nnz={}: {errors:?}",
            kernel.name(),
            a.rows(),
            a.cols(),
            a.nnz()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lowered_traces_pass_every_lint(
        rows in 24usize..160,
        avg in 2usize..12,
        n in 1usize..3, // N in {32, 64}
        seed in 0u64..1000,
    ) {
        let a = power_law(rows, rows, avg as f64, 2.2, seed);
        assert_all_kernels_clean(&a, n * 32);
    }

    #[test]
    fn lowered_traces_pass_on_uniform_and_web(
        rows in 24usize..120,
        nnz_per_row in 2usize..10,
        seed in 0u64..1000,
    ) {
        let a = uniform(rows, rows, rows * nnz_per_row, seed);
        assert_all_kernels_clean(&a, 32);
        let a = web(rows, rows, nnz_per_row as f64, 2.1, 0.7, seed);
        assert_all_kernels_clean(&a, 64);
    }
}

// ---- Mutation tests: each injected violation fires its owning lint. ----

fn has_error(trace: &KernelTrace, lint: LintId) -> bool {
    let device = Device::rtx4090();
    verify_trace(&TraceCase::new("mutant", &device, trace))
        .iter()
        .any(|d| d.lint == lint && d.severity == Severity::Error)
}

/// A legal DTC-shaped trace to mutate.
fn healthy_trace() -> KernelTrace {
    let a = power_law(96, 96, 6.0, 2.2, 7);
    DtcKernel::new(&a).trace(64, &Device::rtx4090(), true)
}

#[test]
fn mutation_overflowed_smem_is_caught() {
    let mut trace = healthy_trace();
    trace.set_resources(KernelResources {
        warps_per_block: 8,
        registers_per_thread: 40,
        shared_memory_per_block: 64 * 1024, // 6 x 64K >> Ada's 100K budget
    });
    assert!(has_error(&trace, LintId::SmemCapacity));
    // The declared occupancy 6 also no longer matches eq. 6 (now 1).
    assert!(has_error(&trace, LintId::OccupancyEq6));
}

#[test]
fn mutation_illegal_warp_slots_is_caught() {
    let mut trace = healthy_trace();
    trace.occupancy = 8; // 8 blocks x 8 warps = 64 > 48 slots
    assert!(has_error(&trace, LintId::WarpSlots));
}

#[test]
fn mutation_unsorted_sector_runs_are_caught() {
    let mut trace = healthy_trace();
    let bad = SectorStream::from_runs(vec![
        SectorRun { start: 512, len: 4 },
        SectorRun { start: 0, len: 0 }, // empty run: non-canonical
    ]);
    trace.push(TbWork { hmma_ops: 1.0, hmma_count: 2.0, b_stream: bad, ..TbWork::default() });
    assert!(has_error(&trace, LintId::StreamNonCanonical));
}

#[test]
fn mutation_zeroed_hmma_is_caught() {
    let a = power_law(96, 96, 6.0, 2.2, 7);
    let device = Device::rtx4090();
    let trace = DtcKernel::new(&a).trace(64, &device, false);
    // Rebuild the trace with all Tensor-Core work stripped: the same
    // problem can no longer have been computed.
    let mut zeroed = KernelTrace::new(trace.occupancy, trace.warps_per_tb);
    for i in 0..trace.num_tbs() {
        let mut tb = trace.tb(i).clone();
        tb.hmma_ops = 0.0;
        tb.hmma_count = 0.0;
        tb.fp_ops = 0.0;
        zeroed.push(tb);
    }
    let problem = ProblemSpec {
        rows: a.rows(),
        cols: a.cols(),
        nnz: a.nnz(),
        n: 64,
        b_rows_touched: distinct_col_count(&a),
    };
    let diags = verify_trace(&TraceCase::new("mutant", &device, &zeroed).with_problem(problem));
    assert!(diags.iter().any(|d| d.lint == LintId::MacsInsufficient), "{diags:?}");
}

#[test]
fn mutation_zero_occupancy_is_caught() {
    let mut trace = healthy_trace();
    trace.occupancy = 0;
    assert!(has_error(&trace, LintId::OccupancyZero));
}

#[test]
fn mutation_nonfinite_count_is_caught() {
    let mut trace = healthy_trace();
    trace.push(TbWork { alu_ops: f64::NAN, ..TbWork::default() });
    assert!(has_error(&trace, LintId::NonfiniteCount));
}

#[test]
fn mutation_cp_async_without_sdb_is_caught() {
    let device = Device::rtx4090();
    let trace = healthy_trace(); // DTC default opts: SDB on, overlap set
    let diags = verify_trace(&TraceCase::new("mutant", &device, &trace).with_sdb(false));
    assert!(diags.iter().any(|d| d.lint == LintId::CpAsyncGating), "{diags:?}");
}
